//! Memory passes: alloca promotion (`mem2reg`), scalar replacement of
//! aggregates (`sroa`), dead-store elimination, redundant-load elimination
//! and global optimization.

use std::collections::{HashMap, HashSet};

use cg_ir::{BlockId, Constant, Function, Inst, Module, Op, Operand, Type, ValueId};

use crate::pass::{Pass, PassEffect};

/// Runs a function-local transform over every function, recording exactly
/// which functions changed (the invalidation set for incremental
/// observations).
fn for_each_function(m: &mut Module, mut f: impl FnMut(&mut Function) -> bool) -> PassEffect {
    let mut touched = Vec::new();
    for fid in m.func_ids_vec() {
        if f(m.func_mut(fid)) {
            touched.push(fid);
        }
    }
    PassEffect::funcs(touched)
}

fn zero_of(ty: Type) -> Option<Constant> {
    match ty {
        Type::I1 => Some(Constant::Bool(false)),
        Type::I64 => Some(Constant::Int(0)),
        Type::F64 => Some(Constant::Float(0.0)),
        _ => None,
    }
}

/// Promotes single-cell allocas whose address never escapes into SSA values,
/// inserting φ-nodes at iterated dominance frontiers (the classic SSA
/// construction). This is the enabling pass of the whole pipeline: synthetic
/// and user programs hold locals in memory, and until they are promoted the
/// scalar passes can see nothing.
#[derive(Debug, Default)]
pub struct Mem2Reg;

impl Mem2Reg {
    fn promote_function_with(
        fid: cg_ir::FuncId,
        m: &mut Module,
        am: &mut cg_ir::AnalysisManager,
    ) -> bool {
        let f = m.func(fid);
        // 1. Find promotable allocas: single-slot, used only as the direct
        //    pointer of loads and stores (not stored *as a value*, no gep,
        //    no call, no escape), with a consistent access type.
        #[derive(Clone)]
        struct Cand {
            alloca: ValueId,
            ty: Type,
            def_blocks: HashSet<BlockId>,
        }
        let mut direct: HashMap<ValueId, Cand> = HashMap::new();
        let mut banned: HashSet<ValueId> = HashSet::new();
        for bid in f.block_ids_vec() {
            for inst in &f.block(bid).insts {
                if let (Some(d), Op::Alloca { slots: 1 }) = (inst.dest, &inst.op) {
                    direct.insert(
                        d,
                        Cand {
                            alloca: d,
                            ty: Type::Void,
                            def_blocks: HashSet::new(),
                        },
                    );
                }
            }
        }
        if direct.is_empty() {
            return false;
        }
        for bid in f.block_ids_vec() {
            for inst in &f.block(bid).insts {
                match &inst.op {
                    Op::Load { ptr } => {
                        if let Some(v) = ptr.as_value() {
                            if let Some(c) = direct.get_mut(&v) {
                                if c.ty == Type::Void {
                                    c.ty = inst.ty;
                                } else if c.ty != inst.ty {
                                    banned.insert(v);
                                }
                            }
                        }
                    }
                    Op::Store { ptr, value } => {
                        if let Some(v) = ptr.as_value() {
                            if direct.contains_key(&v) {
                                direct.get_mut(&v).unwrap().def_blocks.insert(bid);
                            }
                        }
                        // Storing the alloca's *address* escapes it.
                        if let Some(v) = value.as_value() {
                            if direct.contains_key(&v) {
                                banned.insert(v);
                            }
                        }
                    }
                    other => {
                        other.for_each_operand(|o| {
                            if let Some(v) = o.as_value() {
                                if direct.contains_key(&v) {
                                    banned.insert(v);
                                }
                            }
                        });
                    }
                }
            }
            f.block(bid).term.for_each_operand(|o| {
                if let Some(v) = o.as_value() {
                    if direct.contains_key(&v) {
                        banned.insert(v);
                    }
                }
            });
        }
        // Determine store types: a store of a value with a type other than
        // the load type bans promotion. (Type of stored operand: constants
        // know theirs; values need the type table.)
        let types = crate::util::value_types(f);
        for bid in f.block_ids_vec() {
            for inst in &f.block(bid).insts {
                if let Op::Store { ptr, value } = &inst.op {
                    if let Some(v) = ptr.as_value() {
                        if let Some(c) = direct.get_mut(&v) {
                            let vt = match value {
                                Operand::Const(k) => Some(k.ty()),
                                Operand::Value(x) => types.get(x).copied(),
                                Operand::Global(_) => Some(Type::Ptr),
                                Operand::Func(_) => None,
                            };
                            match (c.ty, vt) {
                                (_, None) => {
                                    banned.insert(v);
                                }
                                (Type::Void, Some(t)) => c.ty = t,
                                (have, Some(t)) if have != t => {
                                    banned.insert(v);
                                }
                                _ => {}
                            }
                        }
                    }
                }
            }
        }
        let mut cands: Vec<Cand> = direct
            .into_iter()
            .filter(|(v, c)| {
                !banned.contains(v)
                    && zero_of(if c.ty == Type::Void { Type::I64 } else { c.ty }).is_some()
            })
            .map(|(_, mut c)| {
                if c.ty == Type::Void {
                    // Never loaded: stores are dead; promote as i64.
                    c.ty = Type::I64;
                }
                c
            })
            .collect();
        // Deterministic processing order: fresh value ids and φ insertion
        // order must not depend on hash-map iteration (state validation
        // replays actions and compares module hashes).
        cands.sort_by_key(|c| c.alloca);
        if cands.is_empty() {
            return false;
        }

        let dom = am.dom(fid, m.func(fid));
        let df = am.frontiers(fid, m.func(fid));
        let f = m.func_mut(fid);

        // 2. Insert φ placeholders at iterated dominance frontiers.
        // phi_site[(block, cand_idx)] = φ value id
        let mut phi_site: HashMap<(BlockId, usize), ValueId> = HashMap::new();
        for (ci, cand) in cands.iter().enumerate() {
            let mut work: Vec<BlockId> = cand
                .def_blocks
                .iter()
                .copied()
                .filter(|b| dom.is_reachable(*b))
                .collect();
            work.sort();
            let mut placed: HashSet<BlockId> = HashSet::new();
            while let Some(b) = work.pop() {
                for &frontier in &df[b.0 as usize] {
                    if placed.insert(frontier) {
                        let v = f.fresh_value();
                        phi_site.insert((frontier, ci), v);
                        let at = f.block(frontier).phi_count();
                        f.block_mut(frontier)
                            .insts
                            .insert(at, Inst::new(v, cand.ty, Op::Phi(Vec::new())));
                        work.push(frontier);
                    }
                }
            }
        }

        // 3. Rename: DFS over the dominator tree carrying the current value
        //    of each candidate.
        let alloca_index: HashMap<ValueId, usize> = cands
            .iter()
            .enumerate()
            .map(|(i, c)| (c.alloca, i))
            .collect();
        let mut children: HashMap<BlockId, Vec<BlockId>> = HashMap::new();
        for &b in dom.rpo() {
            if let Some(p) = dom.idom(b) {
                children.entry(p).or_default().push(b);
            }
        }
        let mut current: Vec<Vec<Operand>> = cands
            .iter()
            .map(|c| vec![Operand::Const(zero_of(c.ty).expect("checked"))])
            .collect();
        let mut load_subs: HashMap<ValueId, Operand> = HashMap::new();
        let mut dead_insts: HashSet<ValueId> = HashSet::new(); // allocas + loads
        let mut dead_stores: HashSet<(BlockId, usize)> = HashSet::new();
        // φ incomings to append after the walk: (block, φ value, pred, operand)
        let mut phi_incomings: Vec<(BlockId, ValueId, BlockId, Operand)> = Vec::new();

        enum Ev {
            Enter(BlockId),
            Exit(Vec<usize>), // candidate stacks to pop
        }
        let mut stack = vec![Ev::Enter(f.entry())];
        while let Some(ev) = stack.pop() {
            match ev {
                Ev::Enter(b) => {
                    let mut pushed: Vec<usize> = Vec::new();
                    // φ placeholders define new current values on entry.
                    for (ci, _) in cands.iter().enumerate() {
                        if let Some(&phi_v) = phi_site.get(&(b, ci)) {
                            current[ci].push(Operand::Value(phi_v));
                            pushed.push(ci);
                        }
                    }
                    for (ii, inst) in f.block(b).insts.iter().enumerate() {
                        match &inst.op {
                            Op::Alloca { .. } => {
                                if let Some(d) = inst.dest {
                                    if alloca_index.contains_key(&d) {
                                        dead_insts.insert(d);
                                    }
                                }
                            }
                            Op::Load { ptr } => {
                                if let Some(a) = ptr.as_value() {
                                    if let Some(&ci) = alloca_index.get(&a) {
                                        let cur = *current[ci].last().unwrap();
                                        load_subs.insert(inst.dest.unwrap(), cur);
                                        dead_insts.insert(inst.dest.unwrap());
                                    }
                                }
                            }
                            Op::Store { ptr, value } => {
                                if let Some(a) = ptr.as_value() {
                                    if let Some(&ci) = alloca_index.get(&a) {
                                        current[ci].push(*value);
                                        pushed.push(ci);
                                        dead_stores.insert((b, ii));
                                    }
                                }
                            }
                            _ => {}
                        }
                    }
                    // Feed successors' φ placeholders.
                    let mut succs = f.block(b).term.successors().to_vec();
                    succs.sort();
                    succs.dedup();
                    for s in succs {
                        for (ci, _) in cands.iter().enumerate() {
                            if let Some(&phi_v) = phi_site.get(&(s, ci)) {
                                let cur = *current[ci].last().unwrap();
                                phi_incomings.push((s, phi_v, b, cur));
                            }
                        }
                    }
                    stack.push(Ev::Exit(pushed));
                    for c in children.get(&b).cloned().unwrap_or_default() {
                        stack.push(Ev::Enter(c));
                    }
                }
                Ev::Exit(pushed) => {
                    for ci in pushed {
                        current[ci].pop();
                    }
                }
            }
        }

        // 4. Apply: fill φ incomings, rewrite load uses (resolving chains of
        //    load→load substitutions), delete allocas/loads/stores.
        for (b, phi_v, pred, mut val) in phi_incomings {
            // A load that was itself promoted may appear as an incoming.
            let mut guard = 0;
            while let Some(next) = val.as_value().and_then(|v| load_subs.get(&v)) {
                val = *next;
                guard += 1;
                assert!(guard < 10_000, "substitution cycle");
            }
            for inst in &mut f.block_mut(b).insts {
                if inst.dest == Some(phi_v) {
                    if let Op::Phi(incs) = &mut inst.op {
                        incs.push((pred, val));
                    }
                }
            }
        }
        // Resolve chains in load_subs, then apply (in sorted order so any
        // downstream behaviour is reproducible).
        let mut keys: Vec<ValueId> = load_subs.keys().copied().collect();
        keys.sort();
        let resolved: HashMap<ValueId, Operand> = keys
            .into_iter()
            .map(|k| {
                let mut v = load_subs[&k];
                let mut guard = 0;
                while let Some(next) = v.as_value().and_then(|x| load_subs.get(&x)) {
                    v = *next;
                    guard += 1;
                    assert!(guard < 10_000, "substitution cycle");
                }
                (k, v)
            })
            .collect();
        for bid in f.block_ids_vec() {
            let block = f.block_mut(bid);
            for inst in &mut block.insts {
                inst.op.for_each_operand_mut(|o| {
                    if let Some(v) = o.as_value() {
                        if let Some(rep) = resolved.get(&v) {
                            *o = *rep;
                        }
                    }
                });
            }
            block.term.for_each_operand_mut(|o| {
                if let Some(v) = o.as_value() {
                    if let Some(rep) = resolved.get(&v) {
                        *o = *rep;
                    }
                }
            });
        }
        for bid in f.block_ids_vec() {
            let dead_store_idx: HashSet<usize> = dead_stores
                .iter()
                .filter(|(b, _)| *b == bid)
                .map(|(_, i)| *i)
                .collect();
            let block = f.block_mut(bid);
            let mut i = 0;
            block.insts.retain(|inst| {
                let keep = !dead_store_idx.contains(&i)
                    && inst.dest.map(|d| !dead_insts.contains(&d)).unwrap_or(true);
                i += 1;
                keep
            });
        }
        true
    }
}

impl Pass for Mem2Reg {
    fn name(&self) -> String {
        "mem2reg".into()
    }

    fn description(&self) -> String {
        "promote non-escaping single-cell allocas to SSA values".into()
    }

    fn preserved(&self) -> crate::pass::Preserved {
        crate::pass::Preserved::Cfg
    }

    fn run_with(&self, m: &mut Module, am: &mut cg_ir::AnalysisManager) -> PassEffect {
        crate::util::for_each_function_with(m, am, Mem2Reg::promote_function_with)
    }
}

/// Scalar replacement of aggregates: splits multi-cell allocas whose only
/// uses are constant-offset geps (feeding direct loads/stores) into
/// independent single-cell allocas, unlocking [`Mem2Reg`]. `max_slots`
/// bounds the aggregate size considered (LLVM's `-sroa-max-elements`).
#[derive(Debug)]
pub struct Sroa {
    max_slots: u32,
}

impl Default for Sroa {
    fn default() -> Sroa {
        Sroa { max_slots: 64 }
    }
}

impl Sroa {
    /// SROA considering aggregates up to `max_slots` cells.
    pub fn with_max_slots(max_slots: u32) -> Sroa {
        Sroa { max_slots }
    }
}

impl Pass for Sroa {
    fn name(&self) -> String {
        if self.max_slots == 64 {
            "sroa".into()
        } else {
            format!("sroa-{}", self.max_slots)
        }
    }

    fn description(&self) -> String {
        "split constant-indexed aggregate allocas into scalars".into()
    }

    fn preserved(&self) -> crate::pass::Preserved {
        crate::pass::Preserved::Cfg
    }

    fn run_with(&self, m: &mut Module, _am: &mut cg_ir::AnalysisManager) -> PassEffect {
        let max_slots = self.max_slots;
        let effect = for_each_function(m, |f| {
            // alloca -> slots, plus the geps that index it.
            let mut aggs: HashMap<ValueId, u32> = HashMap::new();
            let mut banned: HashSet<ValueId> = HashSet::new();
            let mut geps: HashMap<ValueId, (ValueId, i64)> = HashMap::new(); // gep -> (alloca, off)
            for bid in f.block_ids_vec() {
                for inst in &f.block(bid).insts {
                    if let (Some(d), Op::Alloca { slots }) = (inst.dest, &inst.op) {
                        if *slots > 1 && *slots <= max_slots {
                            aggs.insert(d, *slots);
                        }
                    }
                }
            }
            if aggs.is_empty() {
                return false;
            }
            for bid in f.block_ids_vec() {
                for inst in &f.block(bid).insts {
                    match &inst.op {
                        Op::Gep { base, offset } => {
                            if let Some(a) = base.as_value() {
                                if let Some(&slots) = aggs.get(&a) {
                                    match offset.as_const_int() {
                                        Some(off) if off >= 0 && (off as u32) < slots => {
                                            geps.insert(inst.dest.unwrap(), (a, off));
                                        }
                                        _ => {
                                            banned.insert(a);
                                        }
                                    }
                                }
                            }
                        }
                        Op::Load { ptr } | Op::Store { ptr, .. } => {
                            // Direct load/store of the aggregate base is cell
                            // 0; allowed.
                            if let Some(a) = ptr.as_value() {
                                if aggs.contains_key(&a) {
                                    // treat as gep 0; handled in rewrite via
                                    // identity map below — simplest to ban to
                                    // keep the rewrite uniform.
                                    banned.insert(a);
                                }
                            }
                            if let Op::Store { value, .. } = &inst.op {
                                if let Some(v) = value.as_value() {
                                    if aggs.contains_key(&v) {
                                        banned.insert(v);
                                    }
                                }
                            }
                        }
                        other => {
                            other.for_each_operand(|o| {
                                if let Some(v) = o.as_value() {
                                    if aggs.contains_key(&v) {
                                        banned.insert(v);
                                    }
                                }
                            });
                        }
                    }
                }
            }
            // Also ban aggregates whose geps escape beyond load/store.
            for bid in f.block_ids_vec() {
                for inst in &f.block(bid).insts {
                    let check = |o: &Operand, banned: &mut HashSet<ValueId>| {
                        if let Some(v) = o.as_value() {
                            if let Some((a, _)) = geps.get(&v) {
                                banned.insert(*a);
                            }
                        }
                    };
                    match &inst.op {
                        Op::Load { .. } => {}
                        Op::Store { ptr: _, value } => check(value, &mut banned),
                        Op::Gep { base, offset } => {
                            check(base, &mut banned);
                            check(offset, &mut banned);
                        }
                        other => other.for_each_operand(|o| check(o, &mut banned)),
                    }
                }
            }
            let targets: Vec<(ValueId, u32)> = aggs
                .iter()
                .filter(|(v, _)| !banned.contains(v))
                .map(|(v, s)| (*v, *s))
                .collect();
            if targets.is_empty() {
                return false;
            }
            // Rewrite: for each target aggregate, replace its alloca with
            // per-cell allocas (inserted at the same point), then point each
            // gep at the right scalar.
            for (agg, slots) in targets {
                // Create scalar allocas right after the aggregate's alloca.
                let mut scalars: Vec<ValueId> = Vec::with_capacity(slots as usize);
                'outer: for bid in f.block_ids_vec() {
                    let n = f.block(bid).insts.len();
                    for ii in 0..n {
                        if f.block(bid).insts[ii].dest == Some(agg) {
                            for s in 0..slots {
                                let v = f.fresh_value();
                                scalars.push(v);
                                f.block_mut(bid).insts.insert(
                                    ii + 1 + s as usize,
                                    Inst::new(v, Type::Ptr, Op::Alloca { slots: 1 }),
                                );
                            }
                            // Remove the aggregate alloca itself.
                            f.block_mut(bid).insts.remove(ii);
                            break 'outer;
                        }
                    }
                }
                // Redirect geps.
                let relevant: Vec<(ValueId, i64)> = geps
                    .iter()
                    .filter(|(_, (a, _))| *a == agg)
                    .map(|(g, (_, off))| (*g, *off))
                    .collect();
                for (g, off) in relevant {
                    f.replace_all_uses(g, Operand::Value(scalars[off as usize]));
                    for bid in f.block_ids_vec() {
                        f.block_mut(bid).insts.retain(|i| i.dest != Some(g));
                    }
                }
            }
            true
        });
        effect
    }
}

/// Block-local dead-store elimination: a store is dead if the same address
/// operand is stored again later in the block with no intervening load or
/// call.
#[derive(Debug, Default)]
pub struct Dse;

impl Pass for Dse {
    fn name(&self) -> String {
        "dse".into()
    }

    fn description(&self) -> String {
        "remove stores overwritten before any possible read".into()
    }

    fn preserved(&self) -> crate::pass::Preserved {
        crate::pass::Preserved::Cfg
    }

    fn run_with(&self, m: &mut Module, _am: &mut cg_ir::AnalysisManager) -> PassEffect {
        for_each_function(m, |f| {
            let mut changed = false;
            for bid in f.block_ids_vec() {
                let block = f.block(bid);
                let mut dead: HashSet<usize> = HashSet::new();
                // pending[ptr operand] = index of the most recent store.
                let mut pending: HashMap<Operand, usize> = HashMap::new();
                for (i, inst) in block.insts.iter().enumerate() {
                    match &inst.op {
                        Op::Store { ptr, .. } => {
                            if let Some(&prev) = pending.get(ptr) {
                                dead.insert(prev);
                            }
                            pending.insert(*ptr, i);
                        }
                        Op::Load { .. } | Op::Call { .. } => {
                            pending.clear();
                        }
                        _ => {}
                    }
                }
                if !dead.is_empty() {
                    changed = true;
                    let mut i = 0;
                    f.block_mut(bid).insts.retain(|_| {
                        let keep = !dead.contains(&i);
                        i += 1;
                        keep
                    });
                }
            }
            changed
        })
    }
}

/// Block-local redundant-load elimination: a load from `p` directly after a
/// store of `v` to `p` (or an earlier load from `p`) with no intervening
/// write or call yields `v`.
#[derive(Debug, Default)]
pub struct LoadElim;

impl Pass for LoadElim {
    fn name(&self) -> String {
        "load-elim".into()
    }

    fn description(&self) -> String {
        "forward stored values to subsequent loads within a block".into()
    }

    fn preserved(&self) -> crate::pass::Preserved {
        crate::pass::Preserved::Cfg
    }

    fn run_with(&self, m: &mut Module, _am: &mut cg_ir::AnalysisManager) -> PassEffect {
        for_each_function(m, |f| {
            let mut subs: Vec<(ValueId, Operand)> = Vec::new();
            for bid in f.block_ids_vec() {
                let mut known: HashMap<Operand, Operand> = HashMap::new();
                for inst in &f.block(bid).insts {
                    match &inst.op {
                        Op::Store { ptr, value } => {
                            // A store to one address invalidates knowledge of
                            // all others (conservative aliasing), then
                            // records its own.
                            known.clear();
                            known.insert(*ptr, *value);
                        }
                        Op::Load { ptr } => {
                            if let Some(v) = known.get(ptr) {
                                subs.push((inst.dest.unwrap(), *v));
                            } else {
                                known.insert(*ptr, Operand::Value(inst.dest.unwrap()));
                            }
                        }
                        Op::Call { .. } => known.clear(),
                        _ => {}
                    }
                }
            }
            if subs.is_empty() {
                return false;
            }
            // Resolve substitution chains: a forwarded load may itself be
            // the stored value backing a later forwarding (d3 -> d2 -> d1);
            // replacing in discovery order would resurrect deleted values.
            let map: HashMap<ValueId, Operand> = subs.iter().cloned().collect();
            let resolve = |mut o: Operand| {
                let mut guard = 0;
                while let Some(next) = o.as_value().and_then(|v| map.get(&v)) {
                    o = *next;
                    guard += 1;
                    debug_assert!(guard < 100_000, "substitution cycle");
                }
                o
            };
            let dead: HashSet<ValueId> = subs.iter().map(|(d, _)| *d).collect();
            for (d, v) in subs {
                f.replace_all_uses(d, resolve(v));
            }
            for bid in f.block_ids_vec() {
                f.block_mut(bid)
                    .insts
                    .retain(|i| i.dest.map(|d| !dead.contains(&d)).unwrap_or(true));
            }
            true
        })
    }
}

/// Global optimization: marks never-stored globals as constant and folds
/// loads of constant globals at statically known offsets.
#[derive(Debug, Default)]
pub struct GlobalOpt;

impl Pass for GlobalOpt {
    fn name(&self) -> String {
        "globalopt".into()
    }

    fn description(&self) -> String {
        "constant-promote globals and fold constant-offset loads".into()
    }

    fn preserved(&self) -> crate::pass::Preserved {
        crate::pass::Preserved::Cfg
    }

    fn run_with(&self, m: &mut Module, _am: &mut cg_ir::AnalysisManager) -> PassEffect {
        let mut changed = false;
        // 1. A global never stored through (directly or via gep) is constant.
        let mut stored: HashSet<u32> = HashSet::new();
        // Track geps of globals: gep value -> global index (per function).
        for fid in m.func_ids_vec() {
            let f = m.func(fid);
            let mut gep_of: HashMap<ValueId, u32> = HashMap::new();
            for bid in f.block_ids_vec() {
                for inst in &f.block(bid).insts {
                    if let (Some(d), Op::Gep { base, .. }) = (inst.dest, &inst.op) {
                        match base {
                            Operand::Global(g) => {
                                gep_of.insert(d, g.0);
                            }
                            Operand::Value(v) => {
                                if let Some(&g) = gep_of.get(v) {
                                    gep_of.insert(d, g);
                                }
                            }
                            _ => {}
                        }
                    }
                }
            }
            for bid in f.block_ids_vec() {
                for inst in &f.block(bid).insts {
                    if let Op::Store { ptr, .. } = &inst.op {
                        match ptr {
                            Operand::Global(g) => {
                                stored.insert(g.0);
                            }
                            Operand::Value(v) => {
                                match gep_of.get(v) {
                                    Some(g) => {
                                        stored.insert(*g);
                                    }
                                    None => {
                                        // Unknown pointer: conservatively all
                                        // globals may be stored.
                                        for gi in 0..m.globals().len() as u32 {
                                            stored.insert(gi);
                                        }
                                    }
                                }
                            }
                            _ => {}
                        }
                    }
                }
            }
        }
        for (gi, g) in m.globals_mut().iter_mut().enumerate() {
            if !stored.contains(&(gi as u32)) && !g.constant {
                g.constant = true;
                changed = true;
            }
        }
        // 2. Fold loads of constant globals at constant offsets.
        let globals: Vec<(bool, Vec<i64>, u32)> = m
            .globals()
            .iter()
            .map(|g| (g.constant, g.init.clone(), g.slots))
            .collect();
        let fold = for_each_function(m, |f| {
            // gep value -> (global, const offset)
            let mut gep_const: HashMap<ValueId, (u32, i64)> = HashMap::new();
            for bid in f.block_ids_vec() {
                for inst in &f.block(bid).insts {
                    if let (Some(d), Op::Gep { base, offset }) = (inst.dest, &inst.op) {
                        if let (Operand::Global(g), Some(off)) = (base, offset.as_const_int()) {
                            gep_const.insert(d, (g.0, off));
                        }
                    }
                }
            }
            let mut subs: Vec<(ValueId, Constant)> = Vec::new();
            for bid in f.block_ids_vec() {
                for inst in &f.block(bid).insts {
                    let Op::Load { ptr } = &inst.op else { continue };
                    let target = match ptr {
                        Operand::Global(g) => Some((g.0, 0i64)),
                        Operand::Value(v) => gep_const.get(v).copied(),
                        _ => None,
                    };
                    let Some((gi, off)) = target else { continue };
                    let (constant, init, slots) = &globals[gi as usize];
                    if !*constant || off < 0 || off as u32 >= *slots {
                        continue;
                    }
                    if inst.ty != Type::I64 {
                        continue; // cells are stored as i64 bit patterns
                    }
                    let cell = init.get(off as usize).copied().unwrap_or(0);
                    subs.push((inst.dest.unwrap(), Constant::Int(cell)));
                }
            }
            if subs.is_empty() {
                return false;
            }
            let dead: HashSet<ValueId> = subs.iter().map(|(d, _)| *d).collect();
            for (d, c) in subs {
                f.replace_all_uses(d, Operand::Const(c));
            }
            for bid in f.block_ids_vec() {
                f.block_mut(bid)
                    .insts
                    .retain(|i| i.dest.map(|d| !dead.contains(&d)).unwrap_or(true));
            }
            true
        });
        // Constant-marking only mutates module-level global metadata, never
        // a function body, so the touched set is exactly the fold step's.
        PassEffect {
            changed: changed || fold.changed,
            touched: fold.touched,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cg_ir::builder::ModuleBuilder;
    use cg_ir::interp::{run_main, ExecLimits};
    use cg_ir::verify::verify_module;
    use cg_ir::{BinOp, Pred};

    /// A function that round-trips a computation through an alloca across a
    /// branch — the canonical mem2reg scenario needing a φ.
    fn alloca_diamond() -> Module {
        let mut mb = ModuleBuilder::new("t");
        let mut fb = mb.begin_function("main", &[], Type::I64);
        let slot = fb.alloca(1);
        fb.store(slot, Operand::const_int(10));
        let c = fb.icmp(Pred::Lt, Operand::const_int(3), Operand::const_int(5));
        let t = fb.new_block();
        let e = fb.new_block();
        let j = fb.new_block();
        fb.cond_br(c, t, e);
        fb.switch_to(t);
        fb.store(slot, Operand::const_int(20));
        fb.br(j);
        fb.switch_to(e);
        fb.store(slot, Operand::const_int(30));
        fb.br(j);
        fb.switch_to(j);
        let v = fb.load(Type::I64, slot);
        fb.ret(Some(v));
        fb.finish();
        mb.finish()
    }

    #[test]
    fn mem2reg_inserts_phi_and_preserves_result() {
        let mut m = alloca_diamond();
        let before = run_main(&m, &ExecLimits::default()).unwrap();
        assert!(Mem2Reg.run(&mut m));
        verify_module(&m).unwrap();
        let after = run_main(&m, &ExecLimits::default()).unwrap();
        assert_eq!(before.ret, after.ret);
        // No memory operations remain.
        for fid in m.func_ids_vec() {
            for b in m.func(fid).blocks() {
                for inst in &b.insts {
                    assert!(
                        !matches!(
                            inst.op,
                            Op::Alloca { .. } | Op::Load { .. } | Op::Store { .. }
                        ),
                        "memory op survived: {:?}",
                        inst.op
                    );
                }
            }
        }
        // And a φ was created at the join.
        let has_phi = m
            .func_ids_vec()
            .iter()
            .flat_map(|fid| m.func(*fid).blocks().collect::<Vec<_>>())
            .any(|b| b.insts.iter().any(|i| matches!(i.op, Op::Phi(_))));
        assert!(has_phi);
    }

    #[test]
    fn mem2reg_uninitialized_load_reads_zero() {
        let mut mb = ModuleBuilder::new("t");
        let mut fb = mb.begin_function("main", &[], Type::I64);
        let slot = fb.alloca(1);
        let v = fb.load(Type::I64, slot); // alloca memory is zeroed
        fb.ret(Some(v));
        fb.finish();
        let mut m = mb.finish();
        let before = run_main(&m, &ExecLimits::default()).unwrap();
        assert!(Mem2Reg.run(&mut m));
        verify_module(&m).unwrap();
        let after = run_main(&m, &ExecLimits::default()).unwrap();
        assert_eq!(before.ret, after.ret);
    }

    #[test]
    fn mem2reg_skips_escaping_alloca() {
        let mut mb = ModuleBuilder::new("t");
        let mut fb = mb.begin_function("take", &[Type::Ptr], Type::I64);
        let p = fb.param(0);
        let v = fb.load(Type::I64, p);
        fb.ret(Some(v));
        let take = fb.finish();
        let mut fb = mb.begin_function("main", &[], Type::I64);
        let slot = fb.alloca(1);
        fb.store(slot, Operand::const_int(5));
        let r = fb.call(take, Type::I64, vec![slot]).unwrap();
        fb.ret(Some(r));
        fb.finish();
        let mut m = mb.finish();
        assert!(!Mem2Reg.run(&mut m), "escaping alloca must not be promoted");
    }

    #[test]
    fn sroa_then_mem2reg_scalarizes_aggregate() {
        let mut mb = ModuleBuilder::new("t");
        let mut fb = mb.begin_function("main", &[], Type::I64);
        let agg = fb.alloca(4);
        let p0 = fb.gep(agg, Operand::const_int(0));
        let p3 = fb.gep(agg, Operand::const_int(3));
        fb.store(p0, Operand::const_int(11));
        fb.store(p3, Operand::const_int(31));
        let a = fb.load(Type::I64, p0);
        let b = fb.load(Type::I64, p3);
        let s = fb.bin(BinOp::Add, a, b);
        fb.ret(Some(s));
        fb.finish();
        let mut m = mb.finish();
        let before = run_main(&m, &ExecLimits::default()).unwrap();
        assert!(Sroa::default().run(&mut m));
        verify_module(&m).unwrap();
        assert!(Mem2Reg.run(&mut m));
        verify_module(&m).unwrap();
        let after = run_main(&m, &ExecLimits::default()).unwrap();
        assert_eq!(before.ret, after.ret);
        assert_eq!(after.ret.unwrap().as_int(), Some(42));
    }

    #[test]
    fn dse_removes_overwritten_store() {
        let mut mb = ModuleBuilder::new("t");
        let g = mb.add_global("g", 1, vec![0]);
        let mut fb = mb.begin_function("main", &[], Type::I64);
        let p = Operand::Global(g);
        fb.store(p, Operand::const_int(1)); // dead
        fb.store(p, Operand::const_int(2));
        let v = fb.load(Type::I64, p);
        fb.ret(Some(v));
        fb.finish();
        let mut m = mb.finish();
        let before = m.inst_count();
        assert!(Dse.run(&mut m));
        verify_module(&m).unwrap();
        assert_eq!(m.inst_count(), before - 1);
        assert_eq!(
            run_main(&m, &ExecLimits::default())
                .unwrap()
                .ret
                .unwrap()
                .as_int(),
            Some(2)
        );
    }

    #[test]
    fn dse_respects_intervening_load() {
        let mut mb = ModuleBuilder::new("t");
        let g = mb.add_global("g", 1, vec![0]);
        let mut fb = mb.begin_function("main", &[], Type::I64);
        let p = Operand::Global(g);
        fb.store(p, Operand::const_int(1));
        let v = fb.load(Type::I64, p); // reads the first store
        fb.store(p, Operand::const_int(2));
        fb.ret(Some(v));
        fb.finish();
        let mut m = mb.finish();
        assert!(!Dse.run(&mut m));
    }

    #[test]
    fn load_elim_forwards_store() {
        let mut mb = ModuleBuilder::new("t");
        let g = mb.add_global("g", 1, vec![0]);
        let mut fb = mb.begin_function("main", &[], Type::I64);
        let p = Operand::Global(g);
        fb.store(p, Operand::const_int(7));
        let v = fb.load(Type::I64, p); // → 7
        fb.ret(Some(v));
        fb.finish();
        let mut m = mb.finish();
        assert!(LoadElim.run(&mut m));
        verify_module(&m).unwrap();
        assert_eq!(
            run_main(&m, &ExecLimits::default())
                .unwrap()
                .ret
                .unwrap()
                .as_int(),
            Some(7)
        );
        // Only the store and ret remain.
        assert_eq!(m.inst_count(), 2);
    }

    #[test]
    fn globalopt_folds_constant_table_load() {
        let mut mb = ModuleBuilder::new("t");
        let g = mb.add_global("tab", 4, vec![10, 20, 30, 40]); // never stored
        let mut fb = mb.begin_function("main", &[], Type::I64);
        let p = fb.gep(Operand::Global(g), Operand::const_int(2));
        let v = fb.load(Type::I64, p);
        fb.ret(Some(v));
        fb.finish();
        let mut m = mb.finish();
        assert!(GlobalOpt.run(&mut m));
        verify_module(&m).unwrap();
        assert!(m.globals()[0].constant, "never-stored global becomes const");
        assert_eq!(
            run_main(&m, &ExecLimits::default())
                .unwrap()
                .ret
                .unwrap()
                .as_int(),
            Some(30)
        );
    }

    #[test]
    fn globalopt_keeps_stored_globals_mutable() {
        let mut mb = ModuleBuilder::new("t");
        let g = mb.add_global("s", 1, vec![0]);
        let mut fb = mb.begin_function("main", &[], Type::I64);
        fb.store(Operand::Global(g), Operand::const_int(1));
        let v = fb.load(Type::I64, Operand::Global(g));
        fb.ret(Some(v));
        fb.finish();
        let mut m = mb.finish();
        GlobalOpt.run(&mut m);
        assert!(!m.globals()[0].constant);
    }
}
