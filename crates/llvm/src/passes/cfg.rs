//! Control-flow passes: branch folding, unreachable-code removal, block
//! merging, empty-block elimination, switch lowering and jump threading.

use std::collections::HashSet;

use cg_ir::analysis::{unreachable_blocks, Cfg};
use cg_ir::{BlockId, Constant, Function, Module, Op, Operand, Terminator};

use crate::pass::{Pass, PassEffect};

/// Runs a function-local transform over every function, recording exactly
/// which functions changed (the invalidation set for incremental
/// observations).
fn for_each_function(m: &mut Module, mut f: impl FnMut(&mut Function) -> bool) -> PassEffect {
    let mut touched = Vec::new();
    for fid in m.func_ids_vec() {
        if f(m.func_mut(fid)) {
            touched.push(fid);
        }
    }
    PassEffect::funcs(touched)
}

/// Drops the φ incoming entries for `pred` in every φ of `block`.
fn remove_phi_incoming(f: &mut Function, block: BlockId, pred: BlockId) {
    for inst in &mut f.block_mut(block).insts {
        if let Op::Phi(incs) = &mut inst.op {
            incs.retain(|(b, _)| *b != pred);
        }
    }
}

/// Renames the φ incoming block `old` to `new` in every φ of `block`.
fn rename_phi_pred(f: &mut Function, block: BlockId, old: BlockId, new: BlockId) {
    for inst in &mut f.block_mut(block).insts {
        if let Op::Phi(incs) = &mut inst.op {
            for (b, _) in incs.iter_mut() {
                if *b == old {
                    *b = new;
                }
            }
        }
    }
}

/// Removes blocks unreachable from the entry (and their φ references).
#[derive(Debug, Default)]
pub struct RemoveUnreachable;

impl RemoveUnreachable {
    /// Shared implementation, used by [`SimplifyCfg`] as a sub-step.
    pub(crate) fn run_on(f: &mut Function) -> bool {
        let dead = unreachable_blocks(f);
        if dead.is_empty() {
            return false;
        }
        let dead_set: HashSet<BlockId> = dead.iter().copied().collect();
        for bid in f.block_ids_vec() {
            if dead_set.contains(&bid) {
                continue;
            }
            for inst in &mut f.block_mut(bid).insts {
                if let Op::Phi(incs) = &mut inst.op {
                    incs.retain(|(b, _)| !dead_set.contains(b));
                }
            }
        }
        for b in dead {
            f.remove_block(b);
        }
        true
    }
}

impl Pass for RemoveUnreachable {
    fn name(&self) -> String {
        "remove-unreachable".into()
    }

    fn description(&self) -> String {
        "delete blocks unreachable from the entry".into()
    }

    fn run_with(&self, m: &mut Module, _am: &mut cg_ir::AnalysisManager) -> PassEffect {
        for_each_function(m, RemoveUnreachable::run_on)
    }
}

/// Folds branches with constant conditions (`condbr true` → `br`,
/// constant switches, and two-way branches with identical targets).
#[derive(Debug, Default)]
pub struct FoldBranches;

impl FoldBranches {
    pub(crate) fn run_on(f: &mut Function) -> bool {
        let mut changed = false;
        for bid in f.block_ids_vec() {
            let term = f.block(bid).term.clone();
            let (new_term, lost_edges): (Terminator, Vec<BlockId>) = match term {
                Terminator::CondBr {
                    cond,
                    on_true,
                    on_false,
                } => {
                    if let Some(Constant::Bool(b)) = cond.as_const() {
                        let (taken, lost) = if b {
                            (on_true, on_false)
                        } else {
                            (on_false, on_true)
                        };
                        let lost_edges = if lost != taken { vec![lost] } else { vec![] };
                        (Terminator::Br { target: taken }, lost_edges)
                    } else if on_true == on_false {
                        (Terminator::Br { target: on_true }, vec![])
                    } else {
                        continue;
                    }
                }
                Terminator::Switch {
                    value,
                    cases,
                    default,
                } => {
                    if let Some(Constant::Int(v)) = value.as_const() {
                        let taken = cases
                            .iter()
                            .find(|(c, _)| *c == v)
                            .map(|(_, b)| *b)
                            .unwrap_or(default);
                        let mut lost: Vec<BlockId> = cases
                            .iter()
                            .map(|(_, b)| *b)
                            .chain(std::iter::once(default))
                            .filter(|b| *b != taken)
                            .collect();
                        lost.sort();
                        lost.dedup();
                        (Terminator::Br { target: taken }, lost)
                    } else if cases.is_empty() {
                        (Terminator::Br { target: default }, vec![])
                    } else {
                        continue;
                    }
                }
                _ => continue,
            };
            f.block_mut(bid).term = new_term;
            for lost in lost_edges {
                remove_phi_incoming(f, lost, bid);
            }
            changed = true;
        }
        changed
    }
}

impl Pass for FoldBranches {
    fn name(&self) -> String {
        "fold-branches".into()
    }

    fn description(&self) -> String {
        "fold constant conditional branches and switches".into()
    }

    fn run_with(&self, m: &mut Module, _am: &mut cg_ir::AnalysisManager) -> PassEffect {
        for_each_function(m, FoldBranches::run_on)
    }
}

/// Merges a block into its unique predecessor when that predecessor branches
/// only to it.
#[derive(Debug, Default)]
pub struct MergeBlocks;

impl MergeBlocks {
    pub(crate) fn run_on(f: &mut Function) -> bool {
        let mut changed = false;
        loop {
            let cfg = Cfg::compute(f);
            let mut merged = false;
            for b in f.block_ids_vec() {
                if b == f.entry() {
                    continue;
                }
                let preds = cfg.preds(b);
                if preds.len() != 1 {
                    continue;
                }
                let a = preds[0];
                if a == b {
                    continue;
                }
                if !matches!(f.block(a).term, Terminator::Br { target } if target == b) {
                    continue;
                }
                // Resolve φ-nodes of b: single predecessor, so each φ is its
                // incoming value from a.
                let phi_n = f.block(b).phi_count();
                for i in 0..phi_n {
                    let inst = f.block(b).insts[i].clone();
                    let (Some(d), Op::Phi(incs)) = (inst.dest, &inst.op) else {
                        unreachable!()
                    };
                    let v = incs
                        .iter()
                        .find(|(p, _)| *p == a)
                        .map(|(_, v)| *v)
                        .expect("phi must cover the unique predecessor");
                    f.replace_all_uses(d, v);
                }
                // Move the remaining instructions and terminator.
                let moved: Vec<_> = f.block_mut(b).insts.drain(phi_n..).collect();
                let term = f.block(b).term.clone();
                f.block_mut(a).insts.extend(moved);
                f.block_mut(a).term = term;
                // b's successors' φs now come from a.
                for s in f.block(a).term.successors() {
                    rename_phi_pred(f, s, b, a);
                }
                f.remove_block(b);
                merged = true;
                changed = true;
                break; // CFG changed; recompute
            }
            if !merged {
                break;
            }
        }
        changed
    }
}

impl Pass for MergeBlocks {
    fn name(&self) -> String {
        "merge-blocks".into()
    }

    fn description(&self) -> String {
        "merge single-successor/single-predecessor block pairs".into()
    }

    fn run_with(&self, m: &mut Module, _am: &mut cg_ir::AnalysisManager) -> PassEffect {
        for_each_function(m, MergeBlocks::run_on)
    }
}

/// Removes empty forwarding blocks (containing only `br target`), and in the
/// `aggressive` configuration also composes branch folding, unreachable
/// elimination and block merging to a fixpoint (LLVM's `-simplifycfg`).
#[derive(Debug, Default)]
pub struct SimplifyCfg {
    aggressive: bool,
}

impl SimplifyCfg {
    /// The aggressive variant (adds empty-block forwarding).
    pub fn aggressive() -> SimplifyCfg {
        SimplifyCfg { aggressive: true }
    }

    /// Removes blocks that contain only `br T` by retargeting their
    /// predecessors straight to `T`.
    fn forward_empty_blocks(f: &mut Function) -> bool {
        let mut changed = false;
        loop {
            let cfg = Cfg::compute(f);
            let mut forwarded = false;
            for e in f.block_ids_vec() {
                if e == f.entry() {
                    continue;
                }
                if !f.block(e).insts.is_empty() {
                    continue;
                }
                let Terminator::Br { target } = f.block(e).term else {
                    continue;
                };
                if target == e {
                    continue;
                }
                let preds: Vec<BlockId> = cfg.preds(e).to_vec();
                if preds.is_empty() {
                    continue; // unreachable; handled elsewhere
                }
                // φ safety: the target's φs must be extendable — each pred P
                // of E will become a direct pred of target. If target has φs
                // and P already branches to target, incomings would conflict;
                // skip in that case.
                let target_has_phis = f.block(target).phi_count() > 0;
                if target_has_phis {
                    let target_preds: HashSet<BlockId> =
                        cfg.preds(target).iter().copied().collect();
                    if preds.iter().any(|p| target_preds.contains(p)) {
                        continue;
                    }
                }
                // Rewrite φs of target: the value flowing from E now flows
                // from each pred of E.
                let phi_n = f.block(target).phi_count();
                for i in 0..phi_n {
                    let Op::Phi(incs) = &mut f.block_mut(target).insts[i].op else {
                        unreachable!()
                    };
                    if let Some(pos) = incs.iter().position(|(b, _)| *b == e) {
                        let (_, v) = incs.remove(pos);
                        for p in &preds {
                            incs.push((*p, v));
                        }
                    }
                }
                for p in preds {
                    f.block_mut(p).term.replace_successor(e, target);
                }
                f.remove_block(e);
                forwarded = true;
                changed = true;
                break;
            }
            if !forwarded {
                break;
            }
        }
        changed
    }
}

impl Pass for SimplifyCfg {
    fn name(&self) -> String {
        if self.aggressive {
            "simplifycfg-aggressive".into()
        } else {
            "simplifycfg".into()
        }
    }

    fn description(&self) -> String {
        "canonicalize the CFG: fold branches, drop unreachable code, merge blocks".into()
    }

    fn run_with(&self, m: &mut Module, _am: &mut cg_ir::AnalysisManager) -> PassEffect {
        let aggressive = self.aggressive;
        for_each_function(m, |f| {
            let mut changed = false;
            loop {
                let mut round = false;
                round |= FoldBranches::run_on(f);
                round |= RemoveUnreachable::run_on(f);
                round |= MergeBlocks::run_on(f);
                if aggressive {
                    round |= SimplifyCfg::forward_empty_blocks(f);
                }
                changed |= round;
                if !round {
                    break;
                }
            }
            changed
        })
    }
}

/// Lowers `switch` terminators into chains of equality tests and two-way
/// branches (LLVM's `-lowerswitch`). Grows code but simplifies the CFG
/// vocabulary for later passes.
#[derive(Debug, Default)]
pub struct LowerSwitch;

impl Pass for LowerSwitch {
    fn name(&self) -> String {
        "lowerswitch".into()
    }

    fn description(&self) -> String {
        "lower switches to conditional branch chains".into()
    }

    fn run_with(&self, m: &mut Module, _am: &mut cg_ir::AnalysisManager) -> PassEffect {
        for_each_function(m, |f| {
            let mut changed = false;
            for bid in f.block_ids_vec() {
                let Terminator::Switch {
                    value,
                    cases,
                    default,
                } = f.block(bid).term.clone()
                else {
                    continue;
                };
                if cases.is_empty() {
                    f.block_mut(bid).term = Terminator::Br { target: default };
                    changed = true;
                    continue;
                }
                // Build the test chain: each link tests one case value.
                // Record the new (chain block → target) edges so the targets'
                // φ incomings can be rewritten afterwards.
                let mut edges: Vec<(BlockId, BlockId)> = Vec::new();
                let mut cur = bid;
                for (i, (case_v, case_b)) in cases.iter().enumerate() {
                    let cmp = f.fresh_value();
                    let last = i + 1 == cases.len();
                    let next = if last { default } else { f.add_block() };
                    f.block_mut(cur).insts.push(cg_ir::Inst::new(
                        cmp,
                        cg_ir::Type::I1,
                        Op::Icmp(cg_ir::Pred::Eq, value, Operand::const_int(*case_v)),
                    ));
                    f.block_mut(cur).term = Terminator::CondBr {
                        cond: Operand::Value(cmp),
                        on_true: *case_b,
                        on_false: next,
                    };
                    edges.push((cur, *case_b));
                    if last {
                        edges.push((cur, default));
                    }
                    cur = next;
                }
                // Rewrite φs: the value that used to flow from `bid` now
                // flows from every chain block with an edge to the target.
                let mut targets: Vec<BlockId> = edges.iter().map(|(_, t)| *t).collect();
                targets.sort();
                targets.dedup();
                for t in targets {
                    let phi_n = f.block(t).phi_count();
                    for i in 0..phi_n {
                        let Op::Phi(incs) = &mut f.block_mut(t).insts[i].op else {
                            unreachable!()
                        };
                        let Some(pos) = incs.iter().position(|(b, _)| *b == bid) else {
                            continue;
                        };
                        let (_, v) = incs.remove(pos);
                        let mut froms: Vec<BlockId> = edges
                            .iter()
                            .filter(|(_, to)| *to == t)
                            .map(|(from, _)| *from)
                            .collect();
                        froms.sort();
                        froms.dedup();
                        for from in froms {
                            incs.push((from, v));
                        }
                    }
                }
                changed = true;
            }
            changed
        })
    }
}

/// Splits critical edges (edges from a multi-successor block to a
/// multi-predecessor block) by inserting forwarding blocks.
#[derive(Debug, Default)]
pub struct BreakCritEdges;

impl Pass for BreakCritEdges {
    fn name(&self) -> String {
        "break-crit-edges".into()
    }

    fn description(&self) -> String {
        "split critical CFG edges".into()
    }

    fn run_with(&self, m: &mut Module, _am: &mut cg_ir::AnalysisManager) -> PassEffect {
        for_each_function(m, |f| {
            let mut changed = false;
            loop {
                let cfg = Cfg::compute(f);
                let mut split: Option<(BlockId, BlockId)> = None;
                'search: for a in f.block_ids_vec() {
                    let succs = f.block(a).term.successors();
                    if succs.len() < 2 {
                        continue;
                    }
                    for b in succs {
                        if cfg.preds(b).len() >= 2 {
                            split = Some((a, b));
                            break 'search;
                        }
                    }
                }
                let Some((a, b)) = split else { break };
                let mid = f.add_block();
                f.block_mut(mid).term = Terminator::Br { target: b };
                f.block_mut(a).term.replace_successor(b, mid);
                rename_phi_pred(f, b, a, mid);
                f.move_block_after(mid, a);
                changed = true;
            }
            changed
        })
    }
}

/// Canonicalizes functions to a single return block, merging return values
/// through a φ (LLVM's `-mergereturn`).
#[derive(Debug, Default)]
pub struct MergeReturn;

impl Pass for MergeReturn {
    fn name(&self) -> String {
        "mergereturn".into()
    }

    fn description(&self) -> String {
        "merge multiple returns into one exit block".into()
    }

    fn run_with(&self, m: &mut Module, _am: &mut cg_ir::AnalysisManager) -> PassEffect {
        for_each_function(m, |f| {
            let rets: Vec<BlockId> = f
                .block_ids_vec()
                .into_iter()
                .filter(|b| matches!(f.block(*b).term, Terminator::Ret { .. }))
                .collect();
            if rets.len() < 2 {
                return false;
            }
            let unified = f.add_block();
            let mut incomings: Vec<(BlockId, Operand)> = Vec::new();
            let mut is_void = false;
            for b in &rets {
                let Terminator::Ret { value } = f.block(*b).term.clone() else {
                    unreachable!()
                };
                match value {
                    Some(v) => incomings.push((*b, v)),
                    None => is_void = true,
                }
                f.block_mut(*b).term = Terminator::Br { target: unified };
            }
            if is_void {
                f.block_mut(unified).term = Terminator::Ret { value: None };
            } else {
                let ty = f.ret_ty;
                let phi = f.fresh_value();
                f.block_mut(unified)
                    .insts
                    .push(cg_ir::Inst::new(phi, ty, Op::Phi(incomings)));
                f.block_mut(unified).term = Terminator::Ret {
                    value: Some(Operand::Value(phi)),
                };
            }
            true
        })
    }
}

/// Jump threading (restricted): when a block consists of nothing but a φ
/// and a conditional branch on it, predecessors contributing constant
/// conditions jump straight to their destination.
#[derive(Debug, Default)]
pub struct JumpThreading;

impl Pass for JumpThreading {
    fn name(&self) -> String {
        "jump-threading".into()
    }

    fn description(&self) -> String {
        "thread constant branch conditions through phi blocks".into()
    }

    fn run_with(&self, m: &mut Module, _am: &mut cg_ir::AnalysisManager) -> PassEffect {
        for_each_function(m, |f| {
            let mut changed = false;
            loop {
                let mut threaded = false;
                for b in f.block_ids_vec() {
                    if b == f.entry() {
                        continue;
                    }
                    let block = f.block(b);
                    if block.insts.len() != 1 {
                        continue;
                    }
                    let (Some(phi_d), Op::Phi(incs)) = (block.insts[0].dest, &block.insts[0].op)
                    else {
                        continue;
                    };
                    let Terminator::CondBr {
                        cond,
                        on_true,
                        on_false,
                    } = block.term
                    else {
                        continue;
                    };
                    if cond.as_value() != Some(phi_d) {
                        continue;
                    }
                    if on_true == b || on_false == b {
                        continue;
                    }
                    // Targets must have no φs (their pred sets will change).
                    if f.block(on_true).phi_count() > 0 || f.block(on_false).phi_count() > 0 {
                        continue;
                    }
                    // Find one predecessor with a constant incoming.
                    let found = incs.iter().find_map(|(p, v)| match v.as_const() {
                        Some(Constant::Bool(c)) => Some((*p, c)),
                        _ => None,
                    });
                    let Some((pred, c)) = found else { continue };
                    let dest = if c { on_true } else { on_false };
                    f.block_mut(pred).term.replace_successor(b, dest);
                    remove_phi_incoming(f, b, pred);
                    threaded = true;
                    changed = true;
                    break;
                }
                if !threaded {
                    break;
                }
                // Threading may strand b without predecessors.
                RemoveUnreachable::run_on(f);
            }
            changed
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cg_ir::builder::ModuleBuilder;
    use cg_ir::verify::verify_module;
    use cg_ir::{BinOp, Pred, Type};

    #[test]
    fn fold_constant_condbr_and_cleanup() {
        let mut mb = ModuleBuilder::new("t");
        let mut fb = mb.begin_function("f", &[Type::I64], Type::I64);
        let p = fb.param(0);
        let t = fb.new_block();
        let e = fb.new_block();
        fb.cond_br(Operand::const_bool(true), t, e);
        fb.switch_to(t);
        fb.ret(Some(p));
        fb.switch_to(e);
        fb.ret(Some(Operand::const_int(0)));
        fb.finish();
        let mut m = mb.finish();
        assert!(SimplifyCfg::default().run(&mut m));
        verify_module(&m).unwrap();
        let f = m.func(m.find_func("f").unwrap());
        assert_eq!(f.num_blocks(), 1, "dead arm removed and blocks merged");
    }

    #[test]
    fn merge_straightline_chain() {
        let mut mb = ModuleBuilder::new("t");
        let mut fb = mb.begin_function("f", &[Type::I64], Type::I64);
        let p = fb.param(0);
        let b1 = fb.new_block();
        let b2 = fb.new_block();
        fb.br(b1);
        fb.switch_to(b1);
        let x = fb.bin(BinOp::Add, p, Operand::const_int(1));
        fb.br(b2);
        fb.switch_to(b2);
        fb.ret(Some(x));
        fb.finish();
        let mut m = mb.finish();
        assert!(MergeBlocks.run(&mut m));
        verify_module(&m).unwrap();
        assert_eq!(m.func(m.find_func("f").unwrap()).num_blocks(), 1);
    }

    #[test]
    fn merge_resolves_phis() {
        // A -> B where B has a φ with a single incoming.
        let mut mb = ModuleBuilder::new("t");
        let mut fb = mb.begin_function("f", &[Type::I64], Type::I64);
        let p = fb.param(0);
        let a = fb.current_block();
        let b = fb.new_block();
        fb.br(b);
        fb.switch_to(b);
        let phi = fb.phi(Type::I64, vec![(a, p)]);
        fb.ret(Some(phi));
        fb.finish();
        let mut m = mb.finish();
        assert!(MergeBlocks.run(&mut m));
        verify_module(&m).unwrap();
        let f = m.func(m.find_func("f").unwrap());
        assert_eq!(f.num_blocks(), 1);
        assert_eq!(f.inst_count(), 1); // just `ret %0`
    }

    #[test]
    fn lower_switch_preserves_behaviour() {
        use cg_ir::interp::{run_main, ExecLimits};
        let m = cg_datasets::benchmark("chstone-v0/mips").unwrap();
        let reference = run_main(&m, &ExecLimits::default()).unwrap();
        let mut lowered = m.clone();
        assert!(LowerSwitch.run(&mut lowered));
        verify_module(&lowered).unwrap();
        let out = run_main(&lowered, &ExecLimits::default()).unwrap();
        assert_eq!(out.ret, reference.ret);
        // No switches remain.
        for fid in lowered.func_ids_vec() {
            for b in lowered.func(fid).blocks() {
                assert!(!matches!(b.term, Terminator::Switch { .. }));
            }
        }
    }

    #[test]
    fn jump_threading_threads_constant_phi() {
        // entry -> mid(phi=true from entry) -> condbr phi, t, e
        let mut mb = ModuleBuilder::new("t");
        let mut fb = mb.begin_function("f", &[Type::I64], Type::I64);
        let p = fb.param(0);
        let entry = fb.current_block();
        let mid = fb.new_block();
        let t = fb.new_block();
        let e = fb.new_block();
        fb.br(mid);
        fb.switch_to(mid);
        let phi = fb.phi(Type::I1, vec![(entry, Operand::const_bool(true))]);
        fb.cond_br(phi, t, e);
        fb.switch_to(t);
        fb.ret(Some(p));
        fb.switch_to(e);
        fb.ret(Some(Operand::const_int(0)));
        fb.finish();
        let mut m = mb.finish();
        assert!(JumpThreading.run(&mut m));
        verify_module(&m).unwrap();
        let f = m.func(m.find_func("f").unwrap());
        // entry now branches straight to t; mid and e are unreachable and
        // removed by the embedded cleanup.
        assert!(f.num_blocks() <= 2);
    }

    #[test]
    fn empty_block_forwarding() {
        let mut mb = ModuleBuilder::new("t");
        let mut fb = mb.begin_function("f", &[Type::I64], Type::I64);
        let p = fb.param(0);
        let hop = fb.new_block();
        let end = fb.new_block();
        let c = fb.icmp(Pred::Lt, p, Operand::const_int(0));
        fb.cond_br(c, hop, end);
        fb.switch_to(hop);
        fb.br(end);
        fb.switch_to(end);
        fb.ret(Some(p));
        fb.finish();
        let mut m = mb.finish();
        assert!(SimplifyCfg::aggressive().run(&mut m));
        verify_module(&m).unwrap();
        // hop removed; condbr both-targets-equal then folds; single block.
        assert_eq!(m.func(m.find_func("f").unwrap()).num_blocks(), 1);
    }
}
