//! Global value numbering — and the deliberately nondeterministic
//! `gvn-sink`, reproducing the LLVM reproducibility bug the paper's state
//! validation caught (§III-B3).

use std::collections::HashMap;

use cg_ir::{BlockId, Module, Op, Operand, ValueId};

use crate::pass::{Pass, PassEffect};

/// Dominator-based global value numbering. A pure expression computed in a
/// dominating block replaces any later recomputation. The `with_loads`
/// variant (`gvn-pre` in the action space) additionally numbers loads within
/// a block, invalidated at stores/calls.
#[derive(Debug, Default)]
pub struct Gvn {
    with_loads: bool,
}

impl Gvn {
    /// GVN that also numbers loads block-locally.
    pub fn with_loads() -> Gvn {
        Gvn { with_loads: true }
    }
}

impl Pass for Gvn {
    fn name(&self) -> String {
        if self.with_loads {
            "gvn-pre".into()
        } else {
            "gvn".into()
        }
    }

    fn description(&self) -> String {
        "dominator-based global value numbering".into()
    }

    fn preserved(&self) -> crate::pass::Preserved {
        crate::pass::Preserved::Cfg
    }

    fn run_with(&self, m: &mut Module, am: &mut cg_ir::AnalysisManager) -> PassEffect {
        let with_loads = self.with_loads;
        let mut touched = Vec::new();
        for fid in m.func_ids_vec() {
            let dom = am.dom(fid, m.func(fid));
            let f = m.func_mut(fid);
            let mut children: HashMap<BlockId, Vec<BlockId>> = HashMap::new();
            for &b in dom.rpo() {
                if let Some(p) = dom.idom(b) {
                    children.entry(p).or_default().push(b);
                }
            }
            // Leader table: canonicalized op -> value. Scoped by dom-tree
            // depth. Substitutions are resolved through the table as we go
            // (a GVN'd value may appear as an operand of a later key).
            let mut table: HashMap<Op, ValueId> = HashMap::new();
            let mut subs: HashMap<ValueId, ValueId> = HashMap::new();

            fn resolve(subs: &HashMap<ValueId, ValueId>, mut v: ValueId) -> ValueId {
                let mut guard = 0;
                while let Some(&next) = subs.get(&v) {
                    v = next;
                    guard += 1;
                    debug_assert!(guard < 100_000);
                }
                v
            }

            fn canon(subs: &HashMap<ValueId, ValueId>, op: &Op) -> Op {
                let mut k = op.clone();
                k.for_each_operand_mut(|o| {
                    if let Some(v) = o.as_value() {
                        *o = Operand::Value(resolve(subs, v));
                    }
                });
                if let Op::Bin(b, x, y) = &k {
                    if b.is_commutative() {
                        let (x, y) = (*x, *y);
                        if format!("{x:?}") > format!("{y:?}") {
                            k = Op::Bin(*b, y, x);
                        }
                    }
                }
                k
            }

            enum Ev {
                Enter(BlockId),
                Exit(Vec<Op>),
            }
            let mut stack = vec![Ev::Enter(f.entry())];
            while let Some(ev) = stack.pop() {
                match ev {
                    Ev::Enter(b) => {
                        let mut added = Vec::new();
                        // Block-local load table (cleared per block).
                        let mut loads: HashMap<Operand, ValueId> = HashMap::new();
                        for inst in &f.block(b).insts {
                            // Clobber check FIRST: stores and void calls have
                            // no dest, so an early dest-guard would skip them
                            // and leave stale entries in the load table —
                            // forwarding a pre-store value past the store.
                            if inst.op.writes_memory() {
                                loads.clear();
                            }
                            let Some(d) = inst.dest else { continue };
                            match &inst.op {
                                Op::Load { ptr } if with_loads => {
                                    let p = match ptr.as_value() {
                                        Some(v) => Operand::Value(resolve(&subs, v)),
                                        None => *ptr,
                                    };
                                    if let Some(&prev) = loads.get(&p) {
                                        subs.insert(d, prev);
                                    } else {
                                        loads.insert(p, d);
                                    }
                                }
                                op if !op.has_side_effects()
                                    && !op.reads_memory()
                                    && !matches!(op, Op::Phi(_) | Op::Alloca { .. }) =>
                                {
                                    let key = canon(&subs, op);
                                    match table.get(&key) {
                                        Some(&prev) => {
                                            subs.insert(d, prev);
                                        }
                                        None => {
                                            table.insert(key.clone(), d);
                                            added.push(key);
                                        }
                                    }
                                }
                                _ => {}
                            }
                        }
                        stack.push(Ev::Exit(added));
                        for c in children.get(&b).cloned().unwrap_or_default() {
                            stack.push(Ev::Enter(c));
                        }
                    }
                    Ev::Exit(added) => {
                        for k in added {
                            table.remove(&k);
                        }
                    }
                }
            }
            if subs.is_empty() {
                continue;
            }
            touched.push(fid);
            let final_subs: Vec<(ValueId, Operand)> = subs
                .keys()
                .map(|&k| (k, Operand::Value(resolve(&subs, k))))
                .collect();
            crate::util::apply_substitutions(f, final_subs);
        }
        PassEffect::funcs(touched)
    }
}

/// `newgvn`: an alias of [`Gvn`] under LLVM's newer pass name (the paper's
/// 124-action space contains both `-gvn` and `-newgvn`).
#[derive(Debug, Default)]
pub struct NewGvnAlias;

impl Pass for NewGvnAlias {
    fn name(&self) -> String {
        "newgvn".into()
    }

    fn description(&self) -> String {
        "value numbering (alias of gvn under the newer pass name)".into()
    }

    fn preserved(&self) -> crate::pass::Preserved {
        crate::pass::Preserved::Cfg
    }

    fn run_with(&self, m: &mut Module, am: &mut cg_ir::AnalysisManager) -> PassEffect {
        Gvn::default().run_with(m, am)
    }
}

/// The quarantined, deliberately **nondeterministic** sinking pass.
///
/// LLVM's `-gvn-sink` sorted a vector of basic-block pointers by address,
/// making its output depend on allocator behaviour; CompilerGym's state
/// validation detected this and the pass was removed from the action space.
/// We reproduce the bug faithfully: candidate sink sites are ordered by the
/// *heap address* of per-block scratch allocations, so repeated runs on the
/// same input can disagree. It is excluded from
/// [`crate::action_space::action_space`] and exists so the validation
/// machinery has a real bug to catch (see the `validation` tests in
/// `cg-core`).
#[derive(Debug, Default)]
pub struct GvnSink;

impl Pass for GvnSink {
    fn name(&self) -> String {
        "gvn-sink".into()
    }

    fn description(&self) -> String {
        "UNSOUND: nondeterministic sinking (reproduces LLVM's -gvn-sink bug)".into()
    }

    fn run(&self, m: &mut Module) -> bool {
        let mut changed = false;
        for fid in m.func_ids_vec() {
            let f = m.func_mut(fid);
            // Candidate blocks: at least two stack allocations whose order
            // can be exchanged (alloca order is semantically free — only the
            // addresses shift). Like LLVM, the pass keeps per-candidate
            // scratch state behind pointers; unlike a correct pass, it
            // *orders candidates by those pointer values*. The scratch state
            // outlives the call (LLVM's equivalent was analysis state cached
            // across pass-manager invocations), so allocation addresses
            // differ between runs even within one process.
            let mut cands: Vec<(BlockId, &'static u64)> = f
                .block_ids_vec()
                .into_iter()
                .filter(|b| {
                    f.block(*b)
                        .insts
                        .iter()
                        .filter(|i| matches!(i.op, Op::Alloca { .. }))
                        .count()
                        > 1
                })
                .map(|b| (b, &*Box::leak(Box::new(b.0 as u64))))
                .collect();
            // THE BUG: order candidates by the heap address of their scratch
            // state — allocator-dependent and thus nondeterministic across
            // runs, exactly like sorting BasicBlock* by pointer value.
            cands.sort_by_key(|(_, scratch)| {
                let addr = (*scratch) as *const u64 as usize;
                // Mix the address so nearby allocations still reorder.
                addr.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 7
            });
            // "Sink": in the chosen block, move the first alloca to the end
            // of the alloca group — a semantically sound reordering that is
            // textually visible, so module hashes diverge between runs when
            // the candidate order differs.
            if let Some((b, scratch)) = cands.first() {
                let allocas: Vec<usize> = f
                    .block(*b)
                    .insts
                    .iter()
                    .enumerate()
                    .filter(|(_, i)| matches!(i.op, Op::Alloca { .. }))
                    .map(|(i, _)| i)
                    .collect();
                // Pick the destination slot from the pointer value too.
                let addr = (*scratch) as *const u64 as usize;
                let j = 1 + (addr.wrapping_mul(0x94D0_49BB_1331_11EB) >> 9) % (allocas.len() - 1);
                let (from, to) = (allocas[0], allocas[j]);
                // Legality: the moved alloca's value must not be used before
                // its new position.
                let def = f.block(*b).insts[from].dest;
                let mut used_between = false;
                if let Some(d) = def {
                    for inst in &f.block(*b).insts[from + 1..=to] {
                        inst.op.for_each_operand(|o| {
                            if o.as_value() == Some(d) {
                                used_between = true;
                            }
                        });
                    }
                }
                if !used_between && from < to {
                    let inst = f.block_mut(*b).insts.remove(from);
                    f.block_mut(*b).insts.insert(to, inst);
                    changed = true;
                }
            }
        }
        changed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cg_ir::builder::ModuleBuilder;
    use cg_ir::verify::verify_module;
    use cg_ir::BinOp;
    use cg_ir::{Pred, Type};

    #[test]
    fn gvn_unifies_across_dominating_blocks() {
        let mut mb = ModuleBuilder::new("t");
        let mut fb = mb.begin_function("f", &[Type::I64], Type::I64);
        let p = fb.param(0);
        let a = fb.bin(BinOp::Mul, p, p);
        let t = fb.new_block();
        let e = fb.new_block();
        let c = fb.icmp(Pred::Lt, p, Operand::const_int(0));
        fb.cond_br(c, t, e);
        fb.switch_to(t);
        let b1 = fb.bin(BinOp::Mul, p, p); // redundant with a
        fb.ret(Some(b1));
        fb.switch_to(e);
        let b2 = fb.bin(BinOp::Mul, p, p); // redundant with a
        fb.ret(Some(b2));
        fb.finish();
        let mut m = mb.finish();
        let _ = a;
        assert!(Gvn::default().run(&mut m));
        verify_module(&m).unwrap();
        assert_eq!(m.inst_count(), 5); // mul, icmp, condbr, ret, ret
    }

    #[test]
    fn gvn_does_not_unify_siblings() {
        // Expressions in sibling branches do not dominate one another.
        let mut mb = ModuleBuilder::new("t");
        let mut fb = mb.begin_function("f", &[Type::I64], Type::I64);
        let p = fb.param(0);
        let t = fb.new_block();
        let e = fb.new_block();
        let j = fb.new_block();
        let c = fb.icmp(Pred::Lt, p, Operand::const_int(0));
        fb.cond_br(c, t, e);
        fb.switch_to(t);
        let a = fb.bin(BinOp::Mul, p, p);
        fb.br(j);
        fb.switch_to(e);
        let b = fb.bin(BinOp::Mul, p, p);
        fb.br(j);
        fb.switch_to(j);
        let phi = fb.phi(Type::I64, vec![(t, a), (e, b)]);
        fb.ret(Some(phi));
        fb.finish();
        let mut m = mb.finish();
        assert!(!Gvn::default().run(&mut m));
    }

    #[test]
    fn gvn_pre_numbers_loads() {
        let mut mb = ModuleBuilder::new("t");
        let g = mb.add_global("g", 1, vec![5]);
        let mut fb = mb.begin_function("f", &[], Type::I64);
        let p = Operand::Global(g);
        let a = fb.load(Type::I64, p);
        let b = fb.load(Type::I64, p); // redundant
        let s = fb.bin(BinOp::Add, a, b);
        fb.ret(Some(s));
        fb.finish();
        let mut m = mb.finish();
        assert!(!Gvn::default().run(&mut m), "plain gvn ignores loads");
        assert!(Gvn::with_loads().run(&mut m));
        verify_module(&m).unwrap();
        assert_eq!(m.inst_count(), 3);
    }

    #[test]
    fn gvn_pre_does_not_forward_loads_across_stores() {
        // Found by cg fuzz (difftest-corpus/repro-000208-*): stores have no
        // dest, so a dest-guard placed before the clobber check skipped them
        // and the second load was "redundant" with the first despite the
        // intervening overwrite.
        let mut mb = ModuleBuilder::new("t");
        let g = mb.add_global("g", 1, vec![5]);
        let mut fb = mb.begin_function("f", &[], Type::I64);
        let p = Operand::Global(g);
        let a = fb.load(Type::I64, p);
        fb.store(p, Operand::const_int(9));
        let b = fb.load(Type::I64, p); // NOT redundant: must observe the 9
        let s = fb.bin(BinOp::Add, a, b);
        fb.ret(Some(s));
        fb.finish();
        let mut m = mb.finish();
        assert!(
            !Gvn::with_loads().run(&mut m),
            "no load may be forwarded here"
        );
        verify_module(&m).unwrap();
        assert_eq!(m.inst_count(), 5);
    }

    #[test]
    fn gvn_sink_is_semantically_sound_but_reorders() {
        let mut mb = ModuleBuilder::new("t");
        let mut fb = mb.begin_function("f", &[Type::I64, Type::I64], Type::I64);
        let p = fb.param(0);
        let q = fb.param(1);
        let a = fb.bin(BinOp::Mul, p, q);
        let b = fb.bin(BinOp::Add, p, q);
        let c = fb.bin(BinOp::Xor, p, q);
        let _ = (a, b);
        fb.ret(Some(c));
        fb.finish();
        let mut m = mb.finish();
        GvnSink.run(&mut m);
        verify_module(&m).unwrap();
    }
}
