//! Loop passes: canonicalization (preheader insertion), loop-invariant code
//! motion, counted-loop unrolling (full and partial), loop deletion and
//! induction-variable simplification.

use std::collections::{HashMap, HashSet};

use cg_ir::analysis::{Cfg, Loop};
use cg_ir::{BinOp, BlockId, Function, Inst, Module, Op, Operand, Pred, Terminator, Type, ValueId};

use crate::pass::{Pass, PassEffect};

/// Values defined outside the loop (or constants/globals) are invariant.
fn defs_in_loop(f: &Function, l: &Loop) -> HashSet<ValueId> {
    let mut defs = HashSet::new();
    for &b in &l.blocks {
        for inst in &f.block(b).insts {
            if let Some(d) = inst.dest {
                defs.insert(d);
            }
        }
    }
    defs
}

/// The unique predecessor of the loop header from outside the loop, if it
/// exists and branches only to the header (a *dedicated preheader*).
fn preheader(f: &Function, cfg: &Cfg, l: &Loop) -> Option<BlockId> {
    let outside: Vec<BlockId> = cfg
        .preds(l.header)
        .iter()
        .copied()
        .filter(|p| !l.contains(*p))
        .collect();
    match outside.as_slice() {
        [p] => {
            let succs = f.block(*p).term.successors();
            (succs.len() == 1 && succs[0] == l.header).then_some(*p)
        }
        _ => None,
    }
}

/// Loop canonicalization: gives every natural loop a dedicated preheader
/// block, enabling [`Licm`] and the unrollers.
#[derive(Debug, Default)]
pub struct LoopSimplify;

impl Pass for LoopSimplify {
    fn name(&self) -> String {
        "loop-simplify".into()
    }

    fn description(&self) -> String {
        "insert dedicated loop preheaders".into()
    }

    fn run_with(&self, m: &mut Module, am: &mut cg_ir::AnalysisManager) -> PassEffect {
        crate::util::for_each_function_with(m, am, |fid, m, am| {
            let mut changed = false;
            loop {
                let cfg = am.cfg(fid, m.func(fid));
                let loops = am.loops(fid, m.func(fid));
                let f = m.func_mut(fid);
                let mut did = false;
                for l in loops.iter() {
                    if preheader(f, &cfg, l).is_some() {
                        continue;
                    }
                    let outside: Vec<BlockId> = cfg
                        .preds(l.header)
                        .iter()
                        .copied()
                        .filter(|p| !l.contains(*p))
                        .collect();
                    if outside.is_empty() {
                        continue; // unreachable loop
                    }
                    // Create the preheader and split φ incomings.
                    let pre = f.add_block();
                    let phi_n = f.block(l.header).phi_count();
                    for i in 0..phi_n {
                        // Collect the incomings from outside preds.
                        let (ty, outside_incs): (Type, Vec<(BlockId, Operand)>) = {
                            let inst = &f.block(l.header).insts[i];
                            let Op::Phi(incs) = &inst.op else {
                                unreachable!()
                            };
                            (
                                inst.ty,
                                incs.iter()
                                    .filter(|(b, _)| outside.contains(b))
                                    .cloned()
                                    .collect(),
                            )
                        };
                        // A single incoming value (or several that agree)
                        // needs no merge φ.
                        let unified: Operand =
                            if outside_incs.iter().all(|(_, v)| *v == outside_incs[0].1) {
                                outside_incs[0].1
                            } else {
                                // Build a φ in the preheader merging the values.
                                let v = f.fresh_value();
                                let at = f.block(pre).phi_count();
                                f.block_mut(pre)
                                    .insts
                                    .insert(at, Inst::new(v, ty, Op::Phi(outside_incs.clone())));
                                Operand::Value(v)
                            };
                        let Op::Phi(incs) = &mut f.block_mut(l.header).insts[i].op else {
                            unreachable!()
                        };
                        incs.retain(|(b, _)| !outside.contains(b));
                        incs.push((pre, unified));
                    }
                    f.block_mut(pre).term = Terminator::Br { target: l.header };
                    for p in &outside {
                        f.block_mut(*p).term.replace_successor(l.header, pre);
                    }
                    f.move_block_after(pre, outside[0]);
                    did = true;
                    changed = true;
                    break; // CFG changed; recompute loops
                }
                if !did {
                    break;
                }
            }
            changed
        })
    }
}

/// Loop-invariant code motion: hoists pure, non-trapping instructions whose
/// operands are loop-invariant into the preheader. Loads are hoisted only
/// from global bases and only out of store-free, call-free loops.
#[derive(Debug, Default)]
pub struct Licm;

impl Pass for Licm {
    fn name(&self) -> String {
        "licm".into()
    }

    fn description(&self) -> String {
        "hoist loop-invariant computation to the preheader".into()
    }

    fn run_with(&self, m: &mut Module, am: &mut cg_ir::AnalysisManager) -> PassEffect {
        crate::util::for_each_function_with(m, am, |fid, m, am| {
            let cfg = am.cfg(fid, m.func(fid));
            let loops = am.loops(fid, m.func(fid));
            let f = m.func_mut(fid);
            let mut changed = false;
            for l in loops.iter() {
                let Some(pre) = preheader(f, &cfg, l) else {
                    continue;
                };
                let loop_writes = l.blocks.iter().any(|b| {
                    f.block(*b)
                        .insts
                        .iter()
                        .any(|i| i.op.writes_memory() || matches!(i.op, Op::Call { .. }))
                });
                loop {
                    let defs = defs_in_loop(f, l);
                    let mut hoisted = false;
                    for &b in &l.blocks {
                        let n = f.block(b).insts.len();
                        for ii in 0..n {
                            let inst = &f.block(b).insts[ii];
                            if inst.dest.is_none()
                                || inst.op.has_side_effects()
                                || matches!(inst.op, Op::Phi(_) | Op::Alloca { .. })
                            {
                                continue;
                            }
                            if inst.op.reads_memory() {
                                // Loads: only from direct global pointers out
                                // of write-free loops (cannot trap, cannot be
                                // clobbered).
                                let Op::Load { ptr } = &inst.op else { continue };
                                if loop_writes || !matches!(ptr, Operand::Global(_)) {
                                    continue;
                                }
                            }
                            let mut invariant = true;
                            inst.op.for_each_operand(|o| {
                                if let Some(v) = o.as_value() {
                                    if defs.contains(&v) {
                                        invariant = false;
                                    }
                                }
                            });
                            if !invariant {
                                continue;
                            }
                            let inst = f.block_mut(b).insts.remove(ii);
                            f.block_mut(pre).insts.push(inst);
                            hoisted = true;
                            changed = true;
                            break;
                        }
                        if hoisted {
                            break;
                        }
                    }
                    if !hoisted {
                        break;
                    }
                }
            }
            changed
        })
    }
}

/// A recognized counted loop of the canonical two-block shape:
///
/// ```text
/// preheader:  ...                     br header
/// header:     i = φ [pre: init] [body: i_next]   (+ other φs)
///             c = icmp lt i, N
///             condbr c, body, exit
/// body:       ...  i_next = add i, step ...      br header
/// ```
#[derive(Debug)]
struct CountedLoop {
    header: BlockId,
    body: BlockId,
    exit: BlockId,
    pre: BlockId,
    /// The induction φ and its parameters.
    phi_i: ValueId,
    init: i64,
    step: i64,
    limit: i64,
    trip: u64,
}

fn recognize_counted(f: &Function, cfg: &Cfg, l: &Loop) -> Option<CountedLoop> {
    if l.blocks.len() != 2 || l.latches.len() != 1 {
        return None;
    }
    let header = l.header;
    let body = l.latches[0];
    if !l.contains(body) || body == header {
        return None;
    }
    let pre = preheader(f, cfg, l)?;
    // Header: φs then exactly one icmp used by the condbr.
    let hblock = f.block(header);
    let phi_n = hblock.phi_count();
    if hblock.insts.len() != phi_n + 1 {
        return None;
    }
    let cmp = &hblock.insts[phi_n];
    let Op::Icmp(Pred::Lt, Operand::Value(iv), Operand::Const(limit)) = &cmp.op else {
        return None;
    };
    let limit = match limit {
        cg_ir::Constant::Int(n) => *n,
        _ => return None,
    };
    let Terminator::CondBr {
        cond,
        on_true,
        on_false,
    } = &hblock.term
    else {
        return None;
    };
    if cond.as_value() != cmp.dest || *on_true != body || l.contains(*on_false) {
        return None;
    }
    // The compare must feed ONLY the branch: if the body (or exit code)
    // reads it, cloned iterations would see a stale condition (peel/unroll
    // materialize the body without re-evaluating the header compare).
    {
        let cmp_dest = cmp.dest;
        let mut escaped = false;
        for bid in f.block_ids_vec() {
            for inst in &f.block(bid).insts {
                inst.op.for_each_operand(|o| {
                    if o.as_value() == cmp_dest {
                        escaped = true;
                    }
                });
            }
        }
        if escaped {
            return None;
        }
    }
    let exit = *on_false;
    // Body: straight-line, ends with br header.
    if !matches!(f.block(body).term, Terminator::Br { target } if target == header) {
        return None;
    }
    if f.block(body).phi_count() != 0 {
        return None;
    }
    // The induction φ.
    let mut found: Option<(ValueId, i64, ValueId)> = None;
    for inst in &hblock.insts[..phi_n] {
        let (Some(d), Op::Phi(incs)) = (inst.dest, &inst.op) else {
            continue;
        };
        if d != *iv {
            continue;
        }
        if incs.len() != 2 {
            return None;
        }
        let init = incs
            .iter()
            .find(|(b, _)| *b == pre)
            .and_then(|(_, v)| v.as_const_int())?;
        let next = incs
            .iter()
            .find(|(b, _)| *b == body)
            .and_then(|(_, v)| v.as_value())?;
        found = Some((d, init, next));
    }
    let (phi_i, init, i_next) = found?;
    // i_next must be `add phi_i, const step` in the body.
    let mut step: Option<i64> = None;
    for inst in &f.block(body).insts {
        if inst.dest == Some(i_next) {
            if let Op::Bin(BinOp::Add, a, b) = &inst.op {
                if a.as_value() == Some(phi_i) {
                    step = b.as_const_int();
                } else if b.as_value() == Some(phi_i) {
                    step = a.as_const_int();
                }
            }
        }
    }
    let step = step?;
    if step <= 0 {
        return None;
    }
    let trip = if init >= limit {
        0
    } else {
        ((limit - init) as u64).div_ceil(step as u64)
    };
    // All other header φs must have exactly (pre, _) and (body, _) incomings.
    for inst in &hblock.insts[..phi_n] {
        let Op::Phi(incs) = &inst.op else { continue };
        if incs.len() != 2
            || !incs.iter().any(|(b, _)| *b == pre)
            || !incs.iter().any(|(b, _)| *b == body)
        {
            return None;
        }
    }
    Some(CountedLoop {
        header,
        body,
        exit,
        pre,
        phi_i,
        init,
        step,
        limit,
        trip,
    })
}

/// Clones `insts` appending to `dst`, remapping operands through `map` and
/// recording fresh destinations back into `map`.
fn clone_insts_into(
    f: &mut Function,
    src: BlockId,
    dst: BlockId,
    skip_phis: bool,
    map: &mut HashMap<ValueId, Operand>,
) {
    let insts: Vec<Inst> = f.block(src).insts.clone();
    for inst in insts {
        if skip_phis && matches!(inst.op, Op::Phi(_)) {
            continue;
        }
        let mut op = inst.op.clone();
        op.for_each_operand_mut(|o| {
            if let Some(v) = o.as_value() {
                if let Some(rep) = map.get(&v) {
                    *o = *rep;
                }
            }
        });
        let new_dest = inst.dest.map(|d| {
            let nd = f.fresh_value();
            map.insert(d, Operand::Value(nd));
            nd
        });
        f.block_mut(dst).insts.push(Inst {
            dest: new_dest,
            ty: inst.ty,
            op,
        });
    }
}

/// Loop unrolling for recognized counted loops. `full(cap)` completely
/// unrolls loops whose total cloned size stays under `cap` instructions;
/// `partial(k)` replicates the body `k` times when the trip count is a known
/// multiple of `k`.
#[derive(Debug)]
pub struct LoopUnroll {
    factor: Option<u32>,
    cap: u64,
}

impl LoopUnroll {
    /// Fully unrolls loops whose cloned size is below `cap` instructions.
    pub fn full(cap: u64) -> LoopUnroll {
        LoopUnroll { factor: None, cap }
    }

    /// Unrolls by a fixed factor (trip count must divide evenly).
    pub fn partial(factor: u32) -> LoopUnroll {
        LoopUnroll {
            factor: Some(factor),
            cap: 4096,
        }
    }

    fn unroll_full(f: &mut Function, cl: &CountedLoop) {
        // Current value of each header φ, iteration by iteration.
        let phis: Vec<(ValueId, Operand, Operand)> = f
            .block(cl.header)
            .insts
            .iter()
            .take_while(|i| matches!(i.op, Op::Phi(_)))
            .map(|inst| {
                let Op::Phi(incs) = &inst.op else {
                    unreachable!()
                };
                let init = incs.iter().find(|(b, _)| *b == cl.pre).unwrap().1;
                let fed = incs.iter().find(|(b, _)| *b == cl.body).unwrap().1;
                (inst.dest.unwrap(), init, fed)
            })
            .collect();
        let mut cur: HashMap<ValueId, Operand> =
            phis.iter().map(|(d, init, _)| (*d, *init)).collect();
        // New home for the straight-line code: the header, emptied.
        f.block_mut(cl.header).insts.clear();
        for _k in 0..cl.trip {
            let mut map = cur.clone();
            // Clone the body (the header held only φs and the exit compare).
            clone_insts_into(f, cl.body, cl.header, false, &mut map);
            // Advance φ values through the latch incomings.
            let mut next = HashMap::new();
            for (d, _, fed) in &phis {
                let v = match fed.as_value() {
                    Some(x) => *map.get(&x).unwrap_or(&Operand::Value(x)),
                    None => *fed,
                };
                next.insert(*d, v);
            }
            cur = next;
        }
        // Final φ values replace all remaining (outside) uses.
        for (d, _, _) in &phis {
            let fin = cur[d];
            f.replace_all_uses(*d, fin);
        }
        f.block_mut(cl.header).term = Terminator::Br { target: cl.exit };
        // Exit φs that named the header keep naming it (still the pred).
        f.remove_block(cl.body);
    }

    fn unroll_partial(f: &mut Function, cl: &CountedLoop, factor: u32) {
        let phis: Vec<(ValueId, Operand)> = f
            .block(cl.header)
            .insts
            .iter()
            .take_while(|i| matches!(i.op, Op::Phi(_)))
            .map(|inst| {
                let Op::Phi(incs) = &inst.op else {
                    unreachable!()
                };
                let fed = incs.iter().find(|(b, _)| *b == cl.body).unwrap().1;
                (inst.dest.unwrap(), fed)
            })
            .collect();
        // Copy 1 is the existing body; copies 2..=factor append clones.
        let mut cur: HashMap<ValueId, Operand> = HashMap::new();
        for (d, fed) in &phis {
            cur.insert(*d, *fed);
        }
        let original_len = f.block(cl.body).insts.len();
        for _k in 1..factor {
            let mut map = cur.clone();
            // Clone only the original instructions (they're a prefix).
            let originals: Vec<Inst> = f.block(cl.body).insts[..original_len].to_vec();
            for inst in originals {
                let mut op = inst.op.clone();
                op.for_each_operand_mut(|o| {
                    if let Some(v) = o.as_value() {
                        if let Some(rep) = map.get(&v) {
                            *o = *rep;
                        }
                    }
                });
                let new_dest = inst.dest.map(|d| {
                    let nd = f.fresh_value();
                    map.insert(d, Operand::Value(nd));
                    nd
                });
                f.block_mut(cl.body).insts.push(Inst {
                    dest: new_dest,
                    ty: inst.ty,
                    op,
                });
            }
            let mut next = HashMap::new();
            for (d, fed) in &phis {
                let v = match fed.as_value() {
                    Some(x) => *map.get(&x).unwrap_or(&Operand::Value(x)),
                    None => *fed,
                };
                next.insert(*d, v);
            }
            cur = next;
        }
        // Update the latch incomings of the header φs.
        let phi_n = f.block(cl.header).phi_count();
        for i in 0..phi_n {
            let d = f.block(cl.header).insts[i].dest.unwrap();
            let new_fed = cur[&d];
            let Op::Phi(incs) = &mut f.block_mut(cl.header).insts[i].op else {
                unreachable!()
            };
            for (b, v) in incs.iter_mut() {
                if *b == cl.body {
                    *v = new_fed;
                }
            }
        }
    }
}

impl Pass for LoopUnroll {
    fn name(&self) -> String {
        match self.factor {
            Some(k) => format!("loop-unroll-{k}"),
            None => format!("loop-unroll-full-{}", self.cap),
        }
    }

    fn description(&self) -> String {
        "unroll counted loops (trading size for cycles)".into()
    }

    fn run_with(&self, m: &mut Module, am: &mut cg_ir::AnalysisManager) -> PassEffect {
        let mut touched = Vec::new();
        for fid in m.func_ids_vec() {
            let mut func_changed = false;
            loop {
                let cfg = am.cfg(fid, m.func(fid));
                let loops = am.loops(fid, m.func(fid));
                let f = m.func_mut(fid);
                let mut did = false;
                for l in loops.iter() {
                    let Some(cl) = recognize_counted(f, &cfg, l) else {
                        continue;
                    };
                    match self.factor {
                        None => {
                            let body_size = (f.block(cl.body).insts.len() + 1) as u64;
                            if cl.trip * body_size > self.cap {
                                continue;
                            }
                            LoopUnroll::unroll_full(f, &cl);
                        }
                        Some(k) => {
                            if k < 2
                                || cl.trip == 0
                                || cl.trip % k as u64 != 0
                                || cl.trip == k as u64
                            {
                                continue;
                            }
                            let body_size = (f.block(cl.body).insts.len() + 1) as u64;
                            if body_size * k as u64 > self.cap {
                                continue;
                            }
                            // The compare limit stays valid because the trip
                            // divides evenly; each latch pass advances k
                            // steps.
                            LoopUnroll::unroll_partial(f, &cl, k);
                        }
                    }
                    did = true;
                    func_changed = true;
                    break;
                }
                if !did {
                    break;
                }
            }
            if func_changed {
                touched.push(fid);
            }
        }
        PassEffect::funcs(touched)
    }
}

/// Loop peeling: clones the first `k` iterations of a recognized counted
/// loop into the preheader, so early iterations (often special-cased by
/// branches inside the body) run straight-line.
#[derive(Debug)]
pub struct LoopPeel {
    k: u32,
}

impl LoopPeel {
    /// Peels `k` leading iterations.
    pub fn new(k: u32) -> LoopPeel {
        LoopPeel { k }
    }
}

impl Pass for LoopPeel {
    fn name(&self) -> String {
        format!("loop-peel-{}", self.k)
    }

    fn description(&self) -> String {
        "clone leading loop iterations into the preheader".into()
    }

    fn run_with(&self, m: &mut Module, am: &mut cg_ir::AnalysisManager) -> PassEffect {
        let k = self.k as u64;
        let mut touched = Vec::new();
        for fid in m.func_ids_vec() {
            let mut func_changed = false;
            let cfg = am.cfg(fid, m.func(fid));
            let loops = am.loops(fid, m.func(fid));
            let f = m.func_mut(fid);
            for l in loops.iter() {
                let Some(cl) = recognize_counted(f, &cfg, l) else {
                    continue;
                };
                if cl.trip < k || k == 0 {
                    continue;
                }
                // φ states: (dest, preheader incoming, latch incoming).
                let phis: Vec<(ValueId, Operand, Operand)> = f
                    .block(cl.header)
                    .insts
                    .iter()
                    .take_while(|i| matches!(i.op, Op::Phi(_)))
                    .map(|inst| {
                        let Op::Phi(incs) = &inst.op else {
                            unreachable!()
                        };
                        let init = incs.iter().find(|(b, _)| *b == cl.pre).unwrap().1;
                        let fed = incs.iter().find(|(b, _)| *b == cl.body).unwrap().1;
                        (inst.dest.unwrap(), init, fed)
                    })
                    .collect();
                let mut cur: HashMap<ValueId, Operand> =
                    phis.iter().map(|(d, init, _)| (*d, *init)).collect();
                for _ in 0..k {
                    let mut map = cur.clone();
                    clone_insts_into(f, cl.body, cl.pre, false, &mut map);
                    let mut next = HashMap::new();
                    for (d, _, fed) in &phis {
                        let v = match fed.as_value() {
                            Some(x) => *map.get(&x).unwrap_or(&Operand::Value(x)),
                            None => *fed,
                        };
                        next.insert(*d, v);
                    }
                    cur = next;
                }
                // The header φs now start from the peeled state.
                let phi_n = f.block(cl.header).phi_count();
                for i in 0..phi_n {
                    let d = f.block(cl.header).insts[i].dest.unwrap();
                    let new_init = cur[&d];
                    let Op::Phi(incs) = &mut f.block_mut(cl.header).insts[i].op else {
                        unreachable!()
                    };
                    for (b, v) in incs.iter_mut() {
                        if *b == cl.pre {
                            *v = new_init;
                        }
                    }
                }
                func_changed = true;
                break; // analyses stale; one peel per function per run
            }
            if func_changed {
                touched.push(fid);
            }
        }
        PassEffect::funcs(touched)
    }
}

/// Deletes loops with no observable effects: no stores or calls inside, and
/// no values defined in the loop used outside it. (Like LLVM, termination is
/// assumed for side-effect-free loops.)
#[derive(Debug, Default)]
pub struct LoopDeletion;

impl Pass for LoopDeletion {
    fn name(&self) -> String {
        "loop-deletion".into()
    }

    fn description(&self) -> String {
        "delete effect-free loops whose values are unused outside".into()
    }

    fn run_with(&self, m: &mut Module, am: &mut cg_ir::AnalysisManager) -> PassEffect {
        crate::util::for_each_function_with(m, am, |fid, m, am| {
            let mut changed = false;
            loop {
                let cfg = am.cfg(fid, m.func(fid));
                let loops = am.loops(fid, m.func(fid));
                let f = m.func_mut(fid);
                let mut did = false;
                for l in loops.iter() {
                    let Some(pre) = preheader(f, &cfg, l) else {
                        continue;
                    };
                    if l.exits.len() != 1 {
                        continue;
                    }
                    let exit = l.exits[0];
                    // Effect-free?
                    let effectful = l
                        .blocks
                        .iter()
                        .any(|b| f.block(*b).insts.iter().any(|i| i.op.has_side_effects()));
                    if effectful {
                        continue;
                    }
                    // No inside-defined value used outside?
                    let defs = defs_in_loop(f, l);
                    let mut escaped = false;
                    for b in f.block_ids_vec() {
                        if l.contains(b) {
                            continue;
                        }
                        for inst in &f.block(b).insts {
                            inst.op.for_each_operand(|o| {
                                if let Some(v) = o.as_value() {
                                    if defs.contains(&v) {
                                        escaped = true;
                                    }
                                }
                            });
                        }
                        f.block(b).term.for_each_operand(|o| {
                            if let Some(v) = o.as_value() {
                                if defs.contains(&v) {
                                    escaped = true;
                                }
                            }
                        });
                    }
                    if escaped {
                        continue;
                    }
                    // Exit φ incomings from loop blocks must be invariant
                    // (they are: no escaped defs), with the exiting block as
                    // their pred; rename that pred to the preheader — unless
                    // the preheader already reaches the exit.
                    let exiting: Vec<BlockId> = cfg
                        .preds(exit)
                        .iter()
                        .copied()
                        .filter(|p| l.contains(*p))
                        .collect();
                    if exiting.len() != 1 {
                        continue;
                    }
                    if cfg.preds(exit).contains(&pre) {
                        continue;
                    }
                    for inst in &mut f.block_mut(exit).insts {
                        if let Op::Phi(incs) = &mut inst.op {
                            for (b, _) in incs.iter_mut() {
                                if *b == exiting[0] {
                                    *b = pre;
                                }
                            }
                        }
                    }
                    f.block_mut(pre).term = Terminator::Br { target: exit };
                    for &b in &l.blocks {
                        f.remove_block(b);
                    }
                    did = true;
                    changed = true;
                    break;
                }
                if !did {
                    break;
                }
            }
            changed
        })
    }
}

/// Induction-variable simplification: replaces uses of the canonical
/// induction variable *after* a counted loop with its final value.
#[derive(Debug, Default)]
pub struct IndVarSimplify;

impl Pass for IndVarSimplify {
    fn name(&self) -> String {
        "indvars".into()
    }

    fn description(&self) -> String {
        "replace post-loop uses of induction variables with final values".into()
    }

    fn run_with(&self, m: &mut Module, am: &mut cg_ir::AnalysisManager) -> PassEffect {
        crate::util::for_each_function_with(m, am, |fid, m, am| {
            let cfg = am.cfg(fid, m.func(fid));
            let loops = am.loops(fid, m.func(fid));
            let f = m.func_mut(fid);
            let mut changed = false;
            for l in loops.iter() {
                let Some(cl) = recognize_counted(f, &cfg, l) else {
                    continue;
                };
                let fin = cl.init.wrapping_add((cl.trip as i64).wrapping_mul(cl.step));
                let _ = cl.limit;
                // Replace uses of φ_i in blocks outside the loop.
                for b in f.block_ids_vec() {
                    if l.contains(b) {
                        continue;
                    }
                    let block = f.block_mut(b);
                    let mut local = false;
                    for inst in &mut block.insts {
                        inst.op.for_each_operand_mut(|o| {
                            if o.as_value() == Some(cl.phi_i) {
                                *o = Operand::const_int(fin);
                                local = true;
                            }
                        });
                    }
                    block.term.for_each_operand_mut(|o| {
                        if o.as_value() == Some(cl.phi_i) {
                            *o = Operand::const_int(fin);
                            local = true;
                        }
                    });
                    changed |= local;
                }
            }
            changed
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cg_ir::analysis::{find_loops, DomTree};
    use cg_ir::builder::ModuleBuilder;
    use cg_ir::interp::{run_main, ExecLimits};
    use cg_ir::verify::verify_module;

    /// for i in 0..10 { acc += i*3 } ; return acc  (with preheader)
    fn counted(trip: i64) -> Module {
        let mut mb = ModuleBuilder::new("t");
        let mut fb = mb.begin_function("main", &[], Type::I64);
        let entry = fb.current_block();
        let header = fb.new_block();
        let body = fb.new_block();
        let exit = fb.new_block();
        fb.br(header);
        fb.switch_to(header);
        let i = fb.phi(Type::I64, vec![(entry, Operand::const_int(0))]);
        let acc = fb.phi(Type::I64, vec![(entry, Operand::const_int(0))]);
        let c = fb.icmp(Pred::Lt, i, Operand::const_int(trip));
        fb.cond_br(c, body, exit);
        fb.switch_to(body);
        let t = fb.bin(BinOp::Mul, i, Operand::const_int(3));
        let acc2 = fb.bin(BinOp::Add, acc, t);
        let i2 = fb.bin(BinOp::Add, i, Operand::const_int(1));
        fb.add_phi_incoming(i, body, i2);
        fb.add_phi_incoming(acc, body, acc2);
        fb.br(header);
        fb.switch_to(exit);
        fb.ret(Some(acc));
        fb.finish();
        mb.finish()
    }

    #[test]
    fn full_unroll_preserves_result() {
        let mut m = counted(10);
        let before = run_main(&m, &ExecLimits::default()).unwrap();
        assert!(LoopUnroll::full(256).run(&mut m));
        verify_module(&m).unwrap();
        let after = run_main(&m, &ExecLimits::default()).unwrap();
        assert_eq!(before.ret, after.ret);
        // All branches gone except the final one; no loop remains.
        let f = m.func(m.find_func("main").unwrap());
        let cfg = Cfg::compute(f);
        let dom = DomTree::compute(f, &cfg);
        assert!(find_loops(f, &cfg, &dom).is_empty());
        // Fewer dynamic instructions, more static ones.
        assert!(after.dyn_insts < before.dyn_insts);
    }

    #[test]
    fn full_unroll_respects_cap() {
        let mut m = counted(1000);
        assert!(
            !LoopUnroll::full(64).run(&mut m),
            "1000 iterations over cap"
        );
    }

    #[test]
    fn partial_unroll_preserves_result_and_keeps_loop() {
        let mut m = counted(12);
        let before = run_main(&m, &ExecLimits::default()).unwrap();
        assert!(LoopUnroll::partial(4).run(&mut m));
        verify_module(&m).unwrap();
        let after = run_main(&m, &ExecLimits::default()).unwrap();
        assert_eq!(before.ret, after.ret);
        let f = m.func(m.find_func("main").unwrap());
        let cfg = Cfg::compute(f);
        let dom = DomTree::compute(f, &cfg);
        assert_eq!(
            find_loops(f, &cfg, &dom).len(),
            1,
            "loop survives partial unroll"
        );
        assert!(
            after.dyn_insts < before.dyn_insts,
            "fewer compare/branch executions"
        );
    }

    #[test]
    fn partial_unroll_requires_divisible_trip() {
        let mut m = counted(10);
        assert!(!LoopUnroll::partial(4).run(&mut m), "10 % 4 != 0");
        assert!(LoopUnroll::partial(2).run(&mut m));
    }

    #[test]
    fn licm_hoists_invariant_mul() {
        // acc += (n*n) each iteration; n*n is invariant.
        let mut mb = ModuleBuilder::new("t");
        let mut fb = mb.begin_function("main", &[], Type::I64);
        let entry = fb.current_block();
        let pre = fb.new_block();
        let header = fb.new_block();
        let body = fb.new_block();
        let exit = fb.new_block();
        let n = fb.bin(BinOp::Add, Operand::const_int(5), Operand::const_int(2));
        fb.br(pre);
        fb.switch_to(pre);
        fb.br(header);
        fb.switch_to(header);
        let i = fb.phi(Type::I64, vec![(pre, Operand::const_int(0))]);
        let acc = fb.phi(Type::I64, vec![(pre, Operand::const_int(0))]);
        let c = fb.icmp(Pred::Lt, i, Operand::const_int(8));
        fb.cond_br(c, body, exit);
        fb.switch_to(body);
        let inv = fb.bin(BinOp::Mul, n, n); // invariant!
        let acc2 = fb.bin(BinOp::Add, acc, inv);
        let i2 = fb.bin(BinOp::Add, i, Operand::const_int(1));
        fb.add_phi_incoming(i, body, i2);
        fb.add_phi_incoming(acc, body, acc2);
        fb.br(header);
        fb.switch_to(exit);
        fb.ret(Some(acc));
        fb.finish();
        let _ = entry;
        let mut m = mb.finish();
        let before = run_main(&m, &ExecLimits::default()).unwrap();
        assert!(Licm.run(&mut m));
        verify_module(&m).unwrap();
        let after = run_main(&m, &ExecLimits::default()).unwrap();
        assert_eq!(before.ret, after.ret);
        assert!(
            after.dyn_insts < before.dyn_insts,
            "mul moved out of the loop"
        );
        // The body no longer contains a multiply.
        let f = m.func(m.find_func("main").unwrap());
        assert!(!f
            .block(body)
            .insts
            .iter()
            .any(|i| matches!(i.op, Op::Bin(BinOp::Mul, _, _))));
    }

    #[test]
    fn loop_simplify_creates_preheader() {
        // Header with two outside predecessors (no preheader).
        let mut mb = ModuleBuilder::new("t");
        let mut fb = mb.begin_function("main", &[], Type::I64);
        let a = fb.current_block();
        let b = fb.new_block();
        let header = fb.new_block();
        let body = fb.new_block();
        let exit = fb.new_block();
        let c0 = fb.icmp(Pred::Lt, Operand::const_int(1), Operand::const_int(2));
        fb.cond_br(c0, b, header);
        fb.switch_to(b);
        fb.br(header);
        fb.switch_to(header);
        let i = fb.phi(
            Type::I64,
            vec![(a, Operand::const_int(0)), (b, Operand::const_int(1))],
        );
        let c = fb.icmp(Pred::Lt, i, Operand::const_int(5));
        fb.cond_br(c, body, exit);
        fb.switch_to(body);
        let i2 = fb.bin(BinOp::Add, i, Operand::const_int(1));
        fb.add_phi_incoming(i, body, i2);
        fb.br(header);
        fb.switch_to(exit);
        fb.ret(Some(i));
        fb.finish();
        let mut m = mb.finish();
        let before = run_main(&m, &ExecLimits::default()).unwrap();
        assert!(LoopSimplify.run(&mut m));
        verify_module(&m).unwrap();
        let after = run_main(&m, &ExecLimits::default()).unwrap();
        assert_eq!(before.ret, after.ret);
        let f = m.func(m.find_func("main").unwrap());
        let cfg = Cfg::compute(f);
        let dom = DomTree::compute(f, &cfg);
        let loops = find_loops(f, &cfg, &dom);
        assert!(preheader(f, &cfg, &loops[0]).is_some());
        assert!(!LoopSimplify.run(&mut m), "idempotent");
    }

    #[test]
    fn loop_deletion_removes_dead_loop() {
        // A loop that computes an accumulator nobody reads.
        let mut mb = ModuleBuilder::new("t");
        let mut fb = mb.begin_function("main", &[], Type::I64);
        let entry = fb.current_block();
        let header = fb.new_block();
        let body = fb.new_block();
        let exit = fb.new_block();
        fb.br(header);
        fb.switch_to(header);
        let i = fb.phi(Type::I64, vec![(entry, Operand::const_int(0))]);
        let acc = fb.phi(Type::I64, vec![(entry, Operand::const_int(0))]);
        let c = fb.icmp(Pred::Lt, i, Operand::const_int(100));
        fb.cond_br(c, body, exit);
        fb.switch_to(body);
        let acc2 = fb.bin(BinOp::Add, acc, i);
        let i2 = fb.bin(BinOp::Add, i, Operand::const_int(1));
        fb.add_phi_incoming(i, body, i2);
        fb.add_phi_incoming(acc, body, acc2);
        fb.br(header);
        fb.switch_to(exit);
        fb.ret(Some(Operand::const_int(7)));
        fb.finish();
        let mut m = mb.finish();
        assert!(LoopDeletion.run(&mut m));
        verify_module(&m).unwrap();
        let out = run_main(&m, &ExecLimits::default()).unwrap();
        assert_eq!(out.ret.unwrap().as_int(), Some(7));
        let f = m.func(m.find_func("main").unwrap());
        assert_eq!(f.num_blocks(), 2); // entry + exit
    }

    #[test]
    fn indvars_computes_exit_value() {
        // `counted`'s loop returns `acc`, not `i` — build a module that
        // returns `i` after the loop so indvars can rewrite the exit value.
        let mut mb = ModuleBuilder::new("t");
        let mut fb = mb.begin_function("main", &[], Type::I64);
        let entry = fb.current_block();
        let header = fb.new_block();
        let body = fb.new_block();
        let exit = fb.new_block();
        fb.br(header);
        fb.switch_to(header);
        let i = fb.phi(Type::I64, vec![(entry, Operand::const_int(0))]);
        let c = fb.icmp(Pred::Lt, i, Operand::const_int(10));
        fb.cond_br(c, body, exit);
        fb.switch_to(body);
        let i2 = fb.bin(BinOp::Add, i, Operand::const_int(1));
        fb.add_phi_incoming(i, body, i2);
        fb.br(header);
        fb.switch_to(exit);
        fb.ret(Some(i));
        fb.finish();
        let mut m = mb.finish();
        let before = run_main(&m, &ExecLimits::default()).unwrap();
        assert_eq!(before.ret.unwrap().as_int(), Some(10));
        assert!(IndVarSimplify.run(&mut m));
        verify_module(&m).unwrap();
        let f = m.func(m.find_func("main").unwrap());
        match &f.block(exit).term {
            Terminator::Ret { value: Some(v) } => assert_eq!(v.as_const_int(), Some(10)),
            t => panic!("unexpected {t:?}"),
        }
    }

    #[test]
    fn unroll_on_cbench_is_sound() {
        let mut m = cg_datasets::benchmark("cbench-v1/sha").unwrap();
        let before = run_main(&m, &ExecLimits::default()).unwrap();
        LoopUnroll::full(256).run(&mut m);
        verify_module(&m).unwrap();
        let after = run_main(&m, &ExecLimits::default()).unwrap();
        assert_eq!(before.ret, after.ret);
    }
}
