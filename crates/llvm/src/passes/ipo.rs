//! Interprocedural passes: inlining, dead-argument elimination, global DCE
//! and function merging.

use std::collections::{HashMap, HashSet};

use cg_ir::{
    BlockId, FuncId, Function, InlineHint, Inst, Module, Op, Operand, Terminator, ValueId,
};

use crate::pass::Pass;
use crate::util::call_counts;

/// One call site: function, block, instruction index.
#[derive(Debug, Clone, Copy)]
struct CallSite {
    caller: FuncId,
    block: BlockId,
    index: usize,
    callee: FuncId,
}

fn find_call_sites(m: &Module) -> Vec<CallSite> {
    let mut sites = Vec::new();
    for caller in m.func_ids_vec() {
        let f = m.func(caller);
        for bid in f.block_ids_vec() {
            for (index, inst) in f.block(bid).insts.iter().enumerate() {
                if let Op::Call { callee, .. } = &inst.op {
                    sites.push(CallSite {
                        caller,
                        block: bid,
                        index,
                        callee: *callee,
                    });
                }
            }
        }
    }
    sites
}

/// Inlines `site` (the call at `site.block[site.index]` in `site.caller`).
/// The callee must not be the caller itself.
fn inline_site(m: &mut Module, site: CallSite) {
    assert_ne!(site.caller, site.callee, "cannot inline recursion");
    let callee = m.func(site.callee).clone();
    let caller = m.func_mut(site.caller);

    // Remove the call instruction, remembering its pieces.
    let call_inst = caller.block_mut(site.block).insts.remove(site.index);
    let Op::Call { args, .. } = call_inst.op else {
        panic!("site does not hold a call")
    };
    let call_dest = call_inst.dest;

    // Split the block: everything after the call (plus the terminator) moves
    // to a continuation block.
    let cont = caller.add_block();
    let moved: Vec<Inst> = caller
        .block_mut(site.block)
        .insts
        .drain(site.index..)
        .collect();
    let term = caller.block(site.block).term.clone();
    caller.block_mut(cont).insts = moved;
    caller.block_mut(cont).term = term;
    // Successors' φs that named the original block now name the
    // continuation (the terminator moved there).
    let succs = caller.block(cont).term.successors();
    for s in succs {
        for inst in &mut caller.block_mut(s).insts {
            if let Op::Phi(incs) = &mut inst.op {
                for (b, _) in incs.iter_mut() {
                    if *b == site.block {
                        *b = cont;
                    }
                }
            }
        }
    }

    // Clone the callee body.
    let mut bmap: HashMap<BlockId, BlockId> = HashMap::new();
    for b in callee.block_ids_vec() {
        bmap.insert(b, caller.add_block());
    }
    let mut vmap: HashMap<ValueId, Operand> = HashMap::new();
    for ((p, _), a) in callee.params.iter().zip(&args) {
        vmap.insert(*p, *a);
    }
    let mut returns: Vec<(BlockId, Option<Operand>)> = Vec::new();
    for b in callee.block_ids_vec() {
        // First allocate fresh destinations (φs may reference forward).
        for inst in &callee.block(b).insts {
            if let Some(d) = inst.dest {
                let nd = caller.fresh_value();
                vmap.insert(d, Operand::Value(nd));
            }
        }
    }
    for b in callee.block_ids_vec() {
        let nb = bmap[&b];
        for inst in &callee.block(b).insts {
            let mut op = inst.op.clone();
            op.for_each_operand_mut(|o| {
                if let Some(v) = o.as_value() {
                    if let Some(rep) = vmap.get(&v) {
                        *o = *rep;
                    }
                }
            });
            if let Op::Phi(incs) = &mut op {
                for (pb, _) in incs.iter_mut() {
                    *pb = bmap[pb];
                }
            }
            let dest = inst.dest.map(|d| vmap[&d].as_value().expect("fresh value"));
            caller.block_mut(nb).insts.push(Inst {
                dest,
                ty: inst.ty,
                op,
            });
        }
        let mut term = callee.block(b).term.clone();
        term.for_each_operand_mut(|o| {
            if let Some(v) = o.as_value() {
                if let Some(rep) = vmap.get(&v) {
                    *o = *rep;
                }
            }
        });
        match term {
            Terminator::Ret { value } => {
                returns.push((nb, value));
                caller.block_mut(nb).term = Terminator::Br { target: cont };
            }
            Terminator::Br { target } => {
                caller.block_mut(nb).term = Terminator::Br {
                    target: bmap[&target],
                };
            }
            Terminator::CondBr {
                cond,
                on_true,
                on_false,
            } => {
                caller.block_mut(nb).term = Terminator::CondBr {
                    cond,
                    on_true: bmap[&on_true],
                    on_false: bmap[&on_false],
                };
            }
            Terminator::Switch {
                value,
                cases,
                default,
            } => {
                caller.block_mut(nb).term = Terminator::Switch {
                    value,
                    cases: cases.into_iter().map(|(v, b)| (v, bmap[&b])).collect(),
                    default: bmap[&default],
                };
            }
            Terminator::Unreachable => {
                caller.block_mut(nb).term = Terminator::Unreachable;
            }
        }
    }
    // Jump from the call block into the cloned entry.
    let clone_entry = bmap[&callee.entry()];
    caller.block_mut(site.block).term = Terminator::Br {
        target: clone_entry,
    };

    // Wire the return value.
    if let Some(d) = call_dest {
        let value: Operand = match returns.as_slice() {
            [] => {
                // No returning path (infinite loop / unreachable): the
                // continuation is unreachable; give the dest a dummy.
                Operand::const_int(0)
            }
            [(_, Some(v))] => *v,
            many => {
                let phi_v = caller.fresh_value();
                let incs: Vec<(BlockId, Operand)> = many
                    .iter()
                    .map(|(b, v)| (*b, v.expect("non-void return")))
                    .collect();
                caller
                    .block_mut(cont)
                    .insts
                    .insert(0, Inst::new(phi_v, call_inst.ty, Op::Phi(incs)));
                Operand::Value(phi_v)
            }
        };
        caller.replace_all_uses(d, value);
    }
}

/// Function inlining with a size threshold: call sites whose callee has at
/// most `threshold` instructions are inlined (`hint(never)` is respected,
/// `hint(always)` bypasses the threshold).
#[derive(Debug)]
pub struct Inline {
    threshold: u32,
}

impl Inline {
    /// Creates an inliner with the given callee-size threshold.
    pub fn with_threshold(threshold: u32) -> Inline {
        Inline { threshold }
    }
}

impl Pass for Inline {
    fn name(&self) -> String {
        format!("inline-{}", self.threshold)
    }

    fn description(&self) -> String {
        "inline call sites below a callee-size threshold".into()
    }

    fn run(&self, m: &mut Module) -> bool {
        let mut changed = false;
        for _round in 0..4 {
            let sites = find_call_sites(m);
            let mut did = false;
            for site in sites {
                if site.caller == site.callee {
                    continue;
                }
                let callee = m.func(site.callee);
                let size = callee.inst_count() as u32;
                let ok = match callee.inline_hint {
                    InlineHint::Never => false,
                    InlineHint::Always => true,
                    InlineHint::None => size <= self.threshold,
                };
                if !ok {
                    continue;
                }
                inline_site(m, site);
                did = true;
                changed = true;
                break; // indices are stale; rescan
            }
            if !did {
                break;
            }
        }
        changed
    }
}

/// Inlines only `hint(always)` callees, regardless of size.
#[derive(Debug, Default)]
pub struct AlwaysInline;

impl Pass for AlwaysInline {
    fn name(&self) -> String {
        "always-inline".into()
    }

    fn description(&self) -> String {
        "inline hint(always) call sites".into()
    }

    fn run(&self, m: &mut Module) -> bool {
        let mut changed = false;
        for _round in 0..8 {
            let sites = find_call_sites(m);
            let site = sites.into_iter().find(|s| {
                s.caller != s.callee && m.func(s.callee).inline_hint == InlineHint::Always
            });
            match site {
                Some(s) => {
                    inline_site(m, s);
                    changed = true;
                }
                None => break,
            }
        }
        changed
    }
}

/// Infers inlining attributes: tiny functions (at most 4 instructions) with
/// no explicit hint become `hint(always)`, feeding [`AlwaysInline`].
#[derive(Debug, Default)]
pub struct FunctionAttrs;

impl Pass for FunctionAttrs {
    fn name(&self) -> String {
        "function-attrs".into()
    }

    fn description(&self) -> String {
        "mark tiny functions hint(always)".into()
    }

    fn run(&self, m: &mut Module) -> bool {
        let mut changed = false;
        for fid in m.func_ids_vec() {
            let f = m.func_mut(fid);
            if f.inline_hint == InlineHint::None && f.inst_count() <= 4 && f.name != "main" {
                f.inline_hint = InlineHint::Always;
                changed = true;
            }
        }
        changed
    }
}

/// Dead-argument elimination: removes parameters never read by the callee,
/// dropping the corresponding argument at every call site.
#[derive(Debug, Default)]
pub struct DeadArgElim;

impl Pass for DeadArgElim {
    fn name(&self) -> String {
        "deadargelim".into()
    }

    fn description(&self) -> String {
        "drop parameters the callee never reads".into()
    }

    fn run(&self, m: &mut Module) -> bool {
        let mut changed = false;
        // Entry points keep their signatures (nothing calls them, but their
        // ABI is externally visible; also `main` is invoked by the runner).
        let counts = call_counts(m);
        for fid in m.func_ids_vec() {
            if counts[fid.0 as usize] == 0 {
                continue;
            }
            let f = m.func(fid);
            let used = crate::util::use_counts(f);
            let dead: Vec<usize> = f
                .params
                .iter()
                .enumerate()
                .filter(|(_, (v, _))| used.get(v.0 as usize).copied().unwrap_or(0) == 0)
                .map(|(i, _)| i)
                .collect();
            if dead.is_empty() {
                continue;
            }
            let dead_set: HashSet<usize> = dead.iter().copied().collect();
            {
                let f = m.func_mut(fid);
                let mut i = 0;
                f.params.retain(|_| {
                    let keep = !dead_set.contains(&i);
                    i += 1;
                    keep
                });
            }
            // Fix every call site.
            for caller in m.func_ids_vec() {
                let cf = m.func_mut(caller);
                for bid in cf.block_ids_vec() {
                    for inst in &mut cf.block_mut(bid).insts {
                        if let Op::Call { callee, args } = &mut inst.op {
                            if *callee == fid {
                                let mut i = 0;
                                args.retain(|_| {
                                    let keep = !dead_set.contains(&i);
                                    i += 1;
                                    keep
                                });
                            }
                        }
                    }
                }
            }
            changed = true;
        }
        changed
    }
}

/// Global DCE: removes functions that are never called and are not the
/// `main` entry point.
#[derive(Debug, Default)]
pub struct GlobalDce;

impl Pass for GlobalDce {
    fn name(&self) -> String {
        "globaldce".into()
    }

    fn description(&self) -> String {
        "remove never-called functions".into()
    }

    fn run(&self, m: &mut Module) -> bool {
        let mut changed = false;
        loop {
            let counts = call_counts(m);
            let dead: Vec<FuncId> = m
                .func_ids_vec()
                .into_iter()
                .filter(|fid| counts[fid.0 as usize] == 0 && m.func(*fid).name != "main")
                .collect();
            if dead.is_empty() {
                break;
            }
            for fid in dead {
                m.remove_function(fid);
                changed = true;
            }
        }
        changed
    }
}

/// Function merging: redirects calls from functions with byte-identical
/// bodies (same signature, same printed body) to a single representative,
/// then lets [`GlobalDce`] collect the duplicates.
#[derive(Debug, Default)]
pub struct MergeFunc;

impl Pass for MergeFunc {
    fn name(&self) -> String {
        "mergefunc".into()
    }

    fn description(&self) -> String {
        "deduplicate identical function bodies".into()
    }

    fn run(&self, m: &mut Module) -> bool {
        // Key: printed function with the name line stripped. Functions whose
        // bodies call themselves are skipped (their body text embeds their
        // own name).
        fn body_key(m: &Module, f: &Function) -> Option<String> {
            for b in f.blocks() {
                for inst in &b.insts {
                    if let Op::Call { callee, .. } = &inst.op {
                        if m.func(*callee).name == f.name {
                            return None;
                        }
                    }
                }
            }
            let mut s = String::new();
            cg_ir::printer::print_function(&mut s, m, f);
            // Strip the `define … @name(…)` header's name.
            Some(s.replacen(&format!("@{}", f.name), "@", 1))
        }
        let mut canon: HashMap<String, FuncId> = HashMap::new();
        let mut redirect: HashMap<FuncId, FuncId> = HashMap::new();
        for fid in m.func_ids_vec() {
            let f = m.func(fid);
            let Some(key) = body_key(m, f) else { continue };
            match canon.get(&key) {
                Some(&rep) => {
                    redirect.insert(fid, rep);
                }
                None => {
                    canon.insert(key, fid);
                }
            }
        }
        if redirect.is_empty() {
            return false;
        }
        for caller in m.func_ids_vec() {
            let cf = m.func_mut(caller);
            for bid in cf.block_ids_vec() {
                for inst in &mut cf.block_mut(bid).insts {
                    if let Op::Call { callee, .. } = &mut inst.op {
                        if let Some(rep) = redirect.get(callee) {
                            *callee = *rep;
                        }
                    }
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cg_ir::builder::ModuleBuilder;
    use cg_ir::interp::{run_main, ExecLimits};
    use cg_ir::verify::verify_module;
    use cg_ir::Type;
    use cg_ir::{BinOp, Pred};

    fn caller_callee(hint: InlineHint) -> Module {
        let mut mb = ModuleBuilder::new("t");
        let mut fb = mb.begin_function("square_plus", &[Type::I64, Type::I64], Type::I64);
        fb.set_inline_hint(hint);
        let x = fb.param(0);
        let y = fb.param(1);
        let c = fb.icmp(Pred::Lt, x, Operand::const_int(0));
        let t = fb.new_block();
        let e = fb.new_block();
        fb.cond_br(c, t, e);
        fb.switch_to(t);
        let nx = fb.neg(x);
        let s1 = fb.bin(BinOp::Mul, nx, nx);
        let r1 = fb.bin(BinOp::Add, s1, y);
        fb.ret(Some(r1));
        fb.switch_to(e);
        let s2 = fb.bin(BinOp::Mul, x, x);
        let r2 = fb.bin(BinOp::Add, s2, y);
        fb.ret(Some(r2));
        let callee = fb.finish();
        let mut fb = mb.begin_function("main", &[], Type::I64);
        let a = fb
            .call(
                callee,
                Type::I64,
                vec![Operand::const_int(-5), Operand::const_int(2)],
            )
            .unwrap();
        let b = fb
            .call(
                callee,
                Type::I64,
                vec![Operand::const_int(3), Operand::const_int(1)],
            )
            .unwrap();
        let s = fb.bin(BinOp::Add, a, b);
        fb.ret(Some(s));
        fb.finish();
        mb.finish()
    }

    #[test]
    fn inline_multi_return_callee() {
        let mut m = caller_callee(InlineHint::None);
        let before = run_main(&m, &ExecLimits::default()).unwrap();
        assert_eq!(before.ret.unwrap().as_int(), Some(27 + 10));
        assert!(Inline::with_threshold(100).run(&mut m));
        verify_module(&m).unwrap();
        let after = run_main(&m, &ExecLimits::default()).unwrap();
        assert_eq!(after.ret, before.ret);
        // No calls remain in main.
        let main = m.func(m.find_func("main").unwrap());
        let has_call = main
            .blocks()
            .any(|b| b.insts.iter().any(|i| matches!(i.op, Op::Call { .. })));
        assert!(!has_call);
        // The return-value φ exists (multi-return callee).
        let has_phi = main
            .blocks()
            .any(|b| b.insts.iter().any(|i| matches!(i.op, Op::Phi(_))));
        assert!(has_phi);
    }

    #[test]
    fn inline_respects_threshold_and_hints() {
        let mut m = caller_callee(InlineHint::None);
        assert!(
            !Inline::with_threshold(2).run(&mut m),
            "callee above threshold"
        );
        let mut m = caller_callee(InlineHint::Never);
        assert!(!Inline::with_threshold(1000).run(&mut m), "hint(never)");
        let mut m = caller_callee(InlineHint::Always);
        assert!(
            Inline::with_threshold(0).run(&mut m),
            "hint(always) bypasses"
        );
        let mut m2 = caller_callee(InlineHint::Always);
        assert!(AlwaysInline.run(&mut m2));
    }

    #[test]
    fn inline_mid_block_call_preserves_following_code() {
        let mut mb = ModuleBuilder::new("t");
        let mut fb = mb.begin_function("twice", &[Type::I64], Type::I64);
        let p = fb.param(0);
        let r = fb.bin(BinOp::Mul, p, Operand::const_int(2));
        fb.ret(Some(r));
        let callee = fb.finish();
        let mut fb = mb.begin_function("main", &[], Type::I64);
        let pre = fb.bin(BinOp::Add, Operand::const_int(1), Operand::const_int(2));
        let mid = fb.call(callee, Type::I64, vec![pre]).unwrap();
        let post = fb.bin(BinOp::Add, mid, Operand::const_int(10));
        fb.ret(Some(post));
        fb.finish();
        let mut m = mb.finish();
        let before = run_main(&m, &ExecLimits::default()).unwrap();
        assert!(Inline::with_threshold(10).run(&mut m));
        verify_module(&m).unwrap();
        let after = run_main(&m, &ExecLimits::default()).unwrap();
        assert_eq!(after.ret, before.ret);
        assert_eq!(after.ret.unwrap().as_int(), Some(16));
    }

    #[test]
    fn deadargelim_drops_unused_params() {
        let mut mb = ModuleBuilder::new("t");
        let mut fb = mb.begin_function("f", &[Type::I64, Type::I64, Type::I64], Type::I64);
        let b = fb.param(1); // params 0 and 2 unused
        fb.ret(Some(b));
        let callee = fb.finish();
        let mut fb = mb.begin_function("main", &[], Type::I64);
        let r = fb
            .call(
                callee,
                Type::I64,
                vec![
                    Operand::const_int(1),
                    Operand::const_int(2),
                    Operand::const_int(3),
                ],
            )
            .unwrap();
        fb.ret(Some(r));
        fb.finish();
        let mut m = mb.finish();
        let before = run_main(&m, &ExecLimits::default()).unwrap();
        assert!(DeadArgElim.run(&mut m));
        verify_module(&m).unwrap();
        assert_eq!(m.func(callee).params.len(), 1);
        let after = run_main(&m, &ExecLimits::default()).unwrap();
        assert_eq!(after.ret, before.ret);
    }

    #[test]
    fn globaldce_removes_uncalled_functions() {
        let mut mb = ModuleBuilder::new("t");
        let mut fb = mb.begin_function("unused", &[], Type::I64);
        fb.ret(Some(Operand::const_int(1)));
        fb.finish();
        let mut fb = mb.begin_function("main", &[], Type::I64);
        fb.ret(Some(Operand::const_int(0)));
        fb.finish();
        let mut m = mb.finish();
        assert!(GlobalDce.run(&mut m));
        verify_module(&m).unwrap();
        assert_eq!(m.num_functions(), 1);
        assert!(m.find_func("main").is_some());
    }

    #[test]
    fn mergefunc_plus_globaldce_deduplicates() {
        let mut mb = ModuleBuilder::new("t");
        let mut ids = Vec::new();
        for name in ["f1", "f2"] {
            let mut fb = mb.begin_function(name, &[Type::I64], Type::I64);
            let p = fb.param(0);
            let r = fb.bin(BinOp::Mul, p, p);
            fb.ret(Some(r));
            ids.push(fb.finish());
        }
        let mut fb = mb.begin_function("main", &[], Type::I64);
        let a = fb
            .call(ids[0], Type::I64, vec![Operand::const_int(3)])
            .unwrap();
        let b = fb
            .call(ids[1], Type::I64, vec![Operand::const_int(4)])
            .unwrap();
        let s = fb.bin(BinOp::Add, a, b);
        fb.ret(Some(s));
        fb.finish();
        let mut m = mb.finish();
        let before = run_main(&m, &ExecLimits::default()).unwrap();
        assert!(MergeFunc.run(&mut m));
        assert!(GlobalDce.run(&mut m));
        verify_module(&m).unwrap();
        assert_eq!(m.num_functions(), 2); // one representative + main
        let after = run_main(&m, &ExecLimits::default()).unwrap();
        assert_eq!(after.ret, before.ret);
        assert_eq!(after.ret.unwrap().as_int(), Some(25));
    }
}
