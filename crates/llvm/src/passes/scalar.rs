//! Scalar optimization passes: dead-code elimination, constant folding,
//! algebraic simplification, reassociation, common-subexpression
//! elimination, sinking, φ simplification and strength reduction.

use std::collections::{HashMap, HashSet};

use cg_ir::{BinOp, BlockId, Constant, Function, Module, Op, Operand, Pred, Type, ValueId};

use crate::pass::{Pass, PassEffect};
use crate::util::{fold_op, for_each_function_with, use_counts};

/// Runs a function-local transform over every function, recording exactly
/// which functions changed — the precise invalidation set for incremental
/// observations.
fn for_each_function(m: &mut Module, mut f: impl FnMut(&mut Function) -> bool) -> PassEffect {
    let mut touched = Vec::new();
    for fid in m.func_ids_vec() {
        if f(m.func_mut(fid)) {
            touched.push(fid);
        }
    }
    PassEffect::funcs(touched)
}

/// Dead code elimination: iteratively removes pure instructions whose
/// results are unused.
#[derive(Debug, Default)]
pub struct Dce;

impl Pass for Dce {
    fn name(&self) -> String {
        "dce".into()
    }

    fn description(&self) -> String {
        "remove pure instructions with unused results".into()
    }

    fn preserved(&self) -> crate::pass::Preserved {
        crate::pass::Preserved::Cfg
    }

    fn run_with(&self, m: &mut Module, _am: &mut cg_ir::AnalysisManager) -> PassEffect {
        for_each_function(m, |f| {
            let mut changed = false;
            loop {
                let uses = use_counts(f);
                let mut removed = false;
                for bid in f.block_ids_vec() {
                    let block = f.block_mut(bid);
                    let before = block.insts.len();
                    block.insts.retain(|inst| match inst.dest {
                        Some(d) => !(inst.is_removable_if_unused() && uses[d.0 as usize] == 0),
                        None => true,
                    });
                    removed |= block.insts.len() != before;
                }
                changed |= removed;
                if !removed {
                    break;
                }
            }
            changed
        })
    }
}

/// Dead instruction elimination: one non-iterative sweep of [`Dce`]
/// (LLVM's `-die` to `-dce`'s fixpoint).
#[derive(Debug, Default)]
pub struct Die;

impl Pass for Die {
    fn name(&self) -> String {
        "die".into()
    }

    fn description(&self) -> String {
        "single-sweep dead instruction elimination".into()
    }

    fn preserved(&self) -> crate::pass::Preserved {
        crate::pass::Preserved::Cfg
    }

    fn run_with(&self, m: &mut Module, _am: &mut cg_ir::AnalysisManager) -> PassEffect {
        for_each_function(m, |f| {
            let uses = use_counts(f);
            let mut removed = false;
            for bid in f.block_ids_vec() {
                let block = f.block_mut(bid);
                let before = block.insts.len();
                block.insts.retain(|inst| match inst.dest {
                    Some(d) => !(inst.is_removable_if_unused() && uses[d.0 as usize] == 0),
                    None => true,
                });
                removed |= block.insts.len() != before;
            }
            removed
        })
    }
}

/// Aggressive DCE: assumes everything dead until proven live, so it also
/// removes dead φ-cycles that use-count-based DCE cannot see.
#[derive(Debug, Default)]
pub struct Adce;

impl Pass for Adce {
    fn name(&self) -> String {
        "adce".into()
    }

    fn description(&self) -> String {
        "aggressive DCE that removes dead phi cycles".into()
    }

    fn preserved(&self) -> crate::pass::Preserved {
        crate::pass::Preserved::Cfg
    }

    fn run_with(&self, m: &mut Module, _am: &mut cg_ir::AnalysisManager) -> PassEffect {
        for_each_function(m, |f| {
            // Roots: operands of side-effecting instructions and terminators.
            let mut live: HashSet<ValueId> = HashSet::new();
            let mut work: Vec<ValueId> = Vec::new();
            let mut def_ops: HashMap<ValueId, Vec<ValueId>> = HashMap::new();
            for bid in f.block_ids_vec() {
                let b = f.block(bid);
                for inst in &b.insts {
                    if let Some(d) = inst.dest {
                        let mut deps = Vec::new();
                        inst.op.for_each_operand(|o| {
                            if let Some(v) = o.as_value() {
                                deps.push(v);
                            }
                        });
                        def_ops.insert(d, deps);
                    }
                    if inst.op.has_side_effects() {
                        inst.op.for_each_operand(|o| {
                            if let Some(v) = o.as_value() {
                                work.push(v);
                            }
                        });
                    }
                }
                b.term.for_each_operand(|o| {
                    if let Some(v) = o.as_value() {
                        work.push(v);
                    }
                });
            }
            while let Some(v) = work.pop() {
                if live.insert(v) {
                    if let Some(deps) = def_ops.get(&v) {
                        work.extend(deps.iter().copied());
                    }
                }
            }
            let mut removed = false;
            for bid in f.block_ids_vec() {
                let block = f.block_mut(bid);
                let before = block.insts.len();
                block.insts.retain(|inst| match inst.dest {
                    Some(d) => !inst.is_removable_if_unused() || live.contains(&d),
                    None => true,
                });
                removed |= block.insts.len() != before;
            }
            removed
        })
    }
}

/// Constant folding: evaluates instructions whose operands are all
/// constants, using the interpreter's own arithmetic.
#[derive(Debug, Default)]
pub struct ConstFold;

impl Pass for ConstFold {
    fn name(&self) -> String {
        "constfold".into()
    }

    fn description(&self) -> String {
        "fold instructions with all-constant operands".into()
    }

    fn preserved(&self) -> crate::pass::Preserved {
        crate::pass::Preserved::Cfg
    }

    fn run_with(&self, m: &mut Module, _am: &mut cg_ir::AnalysisManager) -> PassEffect {
        for_each_function(m, |f| {
            let mut changed = false;
            loop {
                let mut subs: Vec<(ValueId, Constant)> = Vec::new();
                for bid in f.block_ids_vec() {
                    for inst in &f.block(bid).insts {
                        if let (Some(d), Some(c)) = (inst.dest, fold_op(&inst.op)) {
                            subs.push((d, c));
                        }
                    }
                }
                if subs.is_empty() {
                    break;
                }
                changed = true;
                crate::util::apply_substitutions(
                    f,
                    subs.into_iter()
                        .map(|(d, c)| (d, Operand::Const(c)))
                        .collect(),
                );
            }
            changed
        })
    }
}

/// Algebraic instruction combining.
///
/// The `full` variant applies rewrites that may change instruction kinds
/// (e.g. `0 - x` → `neg x`); `simplify_only` (LLVM's `-instsimplify`) only
/// replaces instructions with existing values or constants.
#[derive(Debug)]
pub struct InstCombine {
    rewrite: bool,
}

impl InstCombine {
    /// The full combiner.
    pub fn full() -> InstCombine {
        InstCombine { rewrite: true }
    }

    /// Simplification only: never creates new instructions.
    pub fn simplify_only() -> InstCombine {
        InstCombine { rewrite: false }
    }

    /// Returns `Some(replacement)` when `op` simplifies to an existing
    /// operand or constant.
    fn simplify(op: &Op) -> Option<Operand> {
        use BinOp::*;
        let int = |i: i64| Operand::const_int(i);
        match op {
            Op::Bin(b, x, y) => {
                let xc = x.as_const_int();
                let yc = y.as_const_int();
                match b {
                    Add => {
                        if yc == Some(0) {
                            return Some(*x);
                        }
                        if xc == Some(0) {
                            return Some(*y);
                        }
                    }
                    Sub => {
                        if yc == Some(0) {
                            return Some(*x);
                        }
                        if x == y {
                            return Some(int(0));
                        }
                    }
                    Mul => {
                        if yc == Some(1) {
                            return Some(*x);
                        }
                        if xc == Some(1) {
                            return Some(*y);
                        }
                        if yc == Some(0) || xc == Some(0) {
                            return Some(int(0));
                        }
                    }
                    Div if yc == Some(1) => {
                        return Some(*x);
                    }
                    Rem if yc == Some(1) => {
                        return Some(int(0));
                    }
                    And => {
                        if x == y {
                            return Some(*x);
                        }
                        if yc == Some(0) || xc == Some(0) {
                            return Some(int(0));
                        }
                        if yc == Some(-1) {
                            return Some(*x);
                        }
                        if xc == Some(-1) {
                            return Some(*y);
                        }
                    }
                    Or => {
                        if x == y {
                            return Some(*x);
                        }
                        if yc == Some(0) {
                            return Some(*x);
                        }
                        if xc == Some(0) {
                            return Some(*y);
                        }
                        if yc == Some(-1) || xc == Some(-1) {
                            return Some(int(-1));
                        }
                    }
                    Xor => {
                        if x == y {
                            return Some(int(0));
                        }
                        if yc == Some(0) {
                            return Some(*x);
                        }
                        if xc == Some(0) {
                            return Some(*y);
                        }
                    }
                    Shl | AShr | LShr => {
                        if yc == Some(0) {
                            return Some(*x);
                        }
                        if xc == Some(0) {
                            return Some(int(0));
                        }
                    }
                    FMul => {
                        if y.as_const() == Some(Constant::Float(1.0)) {
                            return Some(*x);
                        }
                        if x.as_const() == Some(Constant::Float(1.0)) {
                            return Some(*y);
                        }
                    }
                    FDiv if y.as_const() == Some(Constant::Float(1.0)) => {
                        return Some(*x);
                    }
                    _ => {}
                }
                None
            }
            Op::Icmp(p, x, y) => {
                if x == y {
                    return Some(Operand::const_bool(matches!(
                        p,
                        Pred::Eq | Pred::Le | Pred::Ge
                    )));
                }
                None
            }
            Op::Select {
                cond,
                on_true,
                on_false,
            } => {
                if on_true == on_false {
                    return Some(*on_true);
                }
                if let Some(Constant::Bool(b)) = cond.as_const() {
                    return Some(if b { *on_true } else { *on_false });
                }
                None
            }
            Op::Gep { base, offset } => {
                if offset.as_const_int() == Some(0) {
                    return Some(*base);
                }
                None
            }
            _ => None,
        }
    }
}

impl Pass for InstCombine {
    fn name(&self) -> String {
        if self.rewrite {
            "instcombine".into()
        } else {
            "instsimplify".into()
        }
    }

    fn description(&self) -> String {
        "algebraic simplification of instructions".into()
    }

    fn preserved(&self) -> crate::pass::Preserved {
        crate::pass::Preserved::Cfg
    }

    fn run_with(&self, m: &mut Module, _am: &mut cg_ir::AnalysisManager) -> PassEffect {
        let rewrite = self.rewrite;
        for_each_function(m, |f| {
            let mut changed = false;
            loop {
                let mut round = false;
                // Phase 1: simplifications (replace with existing operand).
                let mut subs: Vec<(ValueId, Operand)> = Vec::new();
                // Map value -> defining op for not(not x) / neg(neg x).
                let mut defs: HashMap<ValueId, Op> = HashMap::new();
                for bid in f.block_ids_vec() {
                    for inst in &f.block(bid).insts {
                        if let Some(d) = inst.dest {
                            defs.insert(d, inst.op.clone());
                        }
                    }
                }
                for bid in f.block_ids_vec() {
                    for inst in &f.block(bid).insts {
                        let Some(d) = inst.dest else { continue };
                        if let Some(rep) = Self::simplify(&inst.op) {
                            subs.push((d, rep));
                            continue;
                        }
                        // Double inversion: not(not x) → x, neg(neg x) → x,
                        // fneg(fneg x) → x.
                        let inner = |o: &Operand| o.as_value().and_then(|v| defs.get(&v));
                        match &inst.op {
                            Op::Not(v) => {
                                if let Some(Op::Not(orig)) = inner(v) {
                                    subs.push((d, *orig));
                                }
                            }
                            Op::Neg(v) => {
                                if let Some(Op::Neg(orig)) = inner(v) {
                                    subs.push((d, *orig));
                                }
                            }
                            Op::FNeg(v) => {
                                if let Some(Op::FNeg(orig)) = inner(v) {
                                    subs.push((d, *orig));
                                }
                            }
                            Op::Cast(cg_ir::CastKind::IntToBool, v) => {
                                if let Some(Op::Cast(cg_ir::CastKind::BoolToInt, orig)) = inner(v) {
                                    subs.push((d, *orig));
                                }
                            }
                            _ => {}
                        }
                    }
                }
                if !subs.is_empty() {
                    round = true;
                    crate::util::apply_substitutions(f, subs);
                }
                // Phase 2: rewrites that change the op in place.
                if rewrite {
                    for bid in f.block_ids_vec() {
                        for inst in &mut f.block_mut(bid).insts {
                            let new_op = match &inst.op {
                                // 0 - x → neg x
                                Op::Bin(BinOp::Sub, x, y) if x.as_const_int() == Some(0) => {
                                    Some(Op::Neg(*y))
                                }
                                // x ^ -1 → not x
                                Op::Bin(BinOp::Xor, x, y) if y.as_const_int() == Some(-1) => {
                                    Some(Op::Not(*x))
                                }
                                // canonicalize constant to the right for
                                // commutative ops
                                Op::Bin(b, x, y)
                                    if b.is_commutative() && x.is_const() && !y.is_const() =>
                                {
                                    Some(Op::Bin(*b, *y, *x))
                                }
                                // icmp const, x → swapped
                                Op::Icmp(p, x, y) if x.is_const() && !y.is_const() => {
                                    Some(Op::Icmp(p.swapped(), *y, *x))
                                }
                                _ => None,
                            };
                            if let Some(op) = new_op {
                                if inst.op != op {
                                    inst.op = op;
                                    round = true;
                                }
                            }
                        }
                    }
                }
                changed |= round;
                if !round {
                    break;
                }
            }
            changed
        })
    }
}

/// Reassociation: folds constant chains of commutative operations,
/// `(x ⊕ c1) ⊕ c2` → `x ⊕ (c1 ⊕ c2)`.
#[derive(Debug, Default)]
pub struct Reassociate;

impl Pass for Reassociate {
    fn name(&self) -> String {
        "reassociate".into()
    }

    fn description(&self) -> String {
        "fold constant chains of commutative operations".into()
    }

    fn preserved(&self) -> crate::pass::Preserved {
        crate::pass::Preserved::Cfg
    }

    fn run_with(&self, m: &mut Module, _am: &mut cg_ir::AnalysisManager) -> PassEffect {
        for_each_function(m, |f| {
            let mut changed = false;
            loop {
                let mut defs: HashMap<ValueId, Op> = HashMap::new();
                for bid in f.block_ids_vec() {
                    for inst in &f.block(bid).insts {
                        if let Some(d) = inst.dest {
                            defs.insert(d, inst.op.clone());
                        }
                    }
                }
                let mut round = false;
                for bid in f.block_ids_vec() {
                    for inst in &mut f.block_mut(bid).insts {
                        let Op::Bin(b, x, y) = &inst.op else { continue };
                        if !b.is_commutative() || b.ty() != Type::I64 {
                            continue;
                        }
                        let Some(c2) = y.as_const_int() else { continue };
                        let Some(xv) = x.as_value() else { continue };
                        let Some(Op::Bin(b_in, x_in, y_in)) = defs.get(&xv) else {
                            continue;
                        };
                        if b_in != b {
                            continue;
                        }
                        let Some(c1) = y_in.as_const_int() else {
                            continue;
                        };
                        let folded = match b {
                            BinOp::Add => c1.wrapping_add(c2),
                            BinOp::Mul => c1.wrapping_mul(c2),
                            BinOp::And => c1 & c2,
                            BinOp::Or => c1 | c2,
                            BinOp::Xor => c1 ^ c2,
                            _ => continue,
                        };
                        inst.op = Op::Bin(*b, *x_in, Operand::const_int(folded));
                        round = true;
                    }
                }
                changed |= round;
                if !round {
                    break;
                }
            }
            changed
        })
    }
}

/// Dominator-scoped common subexpression elimination of pure operations
/// (LLVM's `-early-cse`).
#[derive(Debug, Default)]
pub struct EarlyCse;

impl Pass for EarlyCse {
    fn name(&self) -> String {
        "early-cse".into()
    }

    fn description(&self) -> String {
        "dominator-scoped CSE of pure expressions".into()
    }

    fn preserved(&self) -> crate::pass::Preserved {
        crate::pass::Preserved::Cfg
    }

    fn run_with(&self, m: &mut Module, am: &mut cg_ir::AnalysisManager) -> PassEffect {
        for_each_function_with(m, am, |fid, m, am| {
            let dom = am.dom(fid, m.func(fid));
            let f = m.func_mut(fid);
            // Dominator-tree preorder walk with a scoped table.
            let mut children: HashMap<BlockId, Vec<BlockId>> = HashMap::new();
            for &b in dom.rpo() {
                if let Some(p) = dom.idom(b) {
                    children.entry(p).or_default().push(b);
                }
            }
            let mut table: HashMap<Op, ValueId> = HashMap::new();
            let mut subs: Vec<(ValueId, ValueId)> = Vec::new();
            // Iterative DFS carrying the set of keys each block added, so we
            // can unwind the scope on exit.
            enum Ev {
                Enter(BlockId),
                Exit(Vec<Op>),
            }
            let mut stack = vec![Ev::Enter(f.entry())];
            while let Some(ev) = stack.pop() {
                match ev {
                    Ev::Enter(b) => {
                        let mut added = Vec::new();
                        for inst in &f.block(b).insts {
                            let Some(d) = inst.dest else { continue };
                            if inst.op.has_side_effects()
                                || inst.op.reads_memory()
                                || matches!(inst.op, Op::Phi(_) | Op::Alloca { .. })
                            {
                                continue;
                            }
                            // Canonicalize commutative operand order so
                            // `a+b` and `b+a` share a key.
                            let mut key = inst.op.clone();
                            if let Op::Bin(bop, x, y) = &key {
                                if bop.is_commutative() {
                                    let (x, y) = (*x, *y);
                                    let swap = format!("{x:?}") > format!("{y:?}");
                                    if swap {
                                        key = Op::Bin(*bop, y, x);
                                    }
                                }
                            }
                            match table.get(&key) {
                                Some(prev) => subs.push((d, *prev)),
                                None => {
                                    table.insert(key.clone(), d);
                                    added.push(key);
                                }
                            }
                        }
                        stack.push(Ev::Exit(added));
                        for c in children.get(&b).cloned().unwrap_or_default() {
                            stack.push(Ev::Enter(c));
                        }
                    }
                    Ev::Exit(added) => {
                        for k in added {
                            table.remove(&k);
                        }
                    }
                }
            }
            if subs.is_empty() {
                return false;
            }
            let dead: HashSet<ValueId> = subs.iter().map(|(d, _)| *d).collect();
            for (d, rep) in subs {
                f.replace_all_uses(d, Operand::Value(rep));
            }
            for bid in f.block_ids_vec() {
                f.block_mut(bid)
                    .insts
                    .retain(|i| i.dest.map(|v| !dead.contains(&v)).unwrap_or(true));
            }
            true
        })
    }
}

/// [`EarlyCse`] extended with block-local load forwarding — the analogue of
/// LLVM's `-early-cse-memssa`.
#[derive(Debug, Default)]
pub struct EarlyCseMemssa;

impl Pass for EarlyCseMemssa {
    fn name(&self) -> String {
        "early-cse-memssa".into()
    }

    fn description(&self) -> String {
        "CSE of pure expressions plus store-to-load forwarding".into()
    }

    fn preserved(&self) -> crate::pass::Preserved {
        crate::pass::Preserved::Cfg
    }

    fn run_with(&self, m: &mut Module, am: &mut cg_ir::AnalysisManager) -> PassEffect {
        let mut a = EarlyCse.run_with(m, am);
        let b = crate::passes::memory::LoadElim.run_with(m, am);
        a.changed |= b.changed;
        a.touched.merge(b.touched);
        a
    }
}

/// Instruction sinking: moves pure, non-memory instructions with a single
/// use into the use's block when that block is dominated by the definition.
#[derive(Debug, Default)]
pub struct Sink;

impl Pass for Sink {
    fn name(&self) -> String {
        "sink".into()
    }

    fn description(&self) -> String {
        "sink single-use pure instructions toward their use".into()
    }

    fn preserved(&self) -> crate::pass::Preserved {
        crate::pass::Preserved::Cfg
    }

    fn run_with(&self, m: &mut Module, am: &mut cg_ir::AnalysisManager) -> PassEffect {
        for_each_function_with(m, am, |fid, m, am| {
            let dom = am.dom(fid, m.func(fid));
            let f = m.func_mut(fid);
            let uses = use_counts(f);
            // Find, for each single-use value, the block and inst index of
            // its use (excluding φ uses and terminator uses).
            let mut use_site: HashMap<ValueId, (BlockId, usize)> = HashMap::new();
            for bid in f.block_ids_vec() {
                for (i, inst) in f.block(bid).insts.iter().enumerate() {
                    if matches!(inst.op, Op::Phi(_)) {
                        continue;
                    }
                    inst.op.for_each_operand(|o| {
                        if let Some(v) = o.as_value() {
                            use_site.insert(v, (bid, i));
                        }
                    });
                }
            }
            let mut moved = false;
            for bid in f.block_ids_vec() {
                let mut i = 0;
                while i < f.block(bid).insts.len() {
                    let inst = &f.block(bid).insts[i];
                    let sinkable = inst.dest.is_some()
                        && !inst.op.has_side_effects()
                        && !inst.op.reads_memory()
                        && !matches!(inst.op, Op::Phi(_) | Op::Alloca { .. });
                    if sinkable {
                        let d = inst.dest.unwrap();
                        if uses[d.0 as usize] == 1 {
                            if let Some(&(ub, _)) = use_site.get(&d) {
                                if ub != bid && dom.is_reachable(ub) && dom.dominates(bid, ub) {
                                    let inst = f.block_mut(bid).insts.remove(i);
                                    let at = f.block(ub).phi_count();
                                    f.block_mut(ub).insts.insert(at, inst);
                                    // Conservative: one sink per pass per
                                    // block position; indices in use_site
                                    // are now stale for ub, so re-run next
                                    // pass invocation for chained sinks.
                                    moved = true;
                                    continue;
                                }
                            }
                        }
                    }
                    i += 1;
                }
            }
            moved
        })
    }
}

/// φ simplification: replaces φ-nodes whose incomings are all the same
/// value (or the φ itself plus one other value).
#[derive(Debug, Default)]
pub struct PhiSimplify;

impl Pass for PhiSimplify {
    fn name(&self) -> String {
        "phi-simplify".into()
    }

    fn description(&self) -> String {
        "remove trivial phi nodes".into()
    }

    fn preserved(&self) -> crate::pass::Preserved {
        crate::pass::Preserved::Cfg
    }

    fn run_with(&self, m: &mut Module, _am: &mut cg_ir::AnalysisManager) -> PassEffect {
        for_each_function(m, |f| {
            let mut changed = false;
            loop {
                let mut subs: Vec<(ValueId, Operand)> = Vec::new();
                for bid in f.block_ids_vec() {
                    for inst in &f.block(bid).insts {
                        let (Some(d), Op::Phi(incs)) = (inst.dest, &inst.op) else {
                            continue;
                        };
                        let mut unique: Option<Operand> = None;
                        let mut trivial = true;
                        for (_, v) in incs {
                            if v.as_value() == Some(d) {
                                continue; // self-reference
                            }
                            match unique {
                                None => unique = Some(*v),
                                Some(u) if u == *v => {}
                                Some(_) => {
                                    trivial = false;
                                    break;
                                }
                            }
                        }
                        if trivial {
                            if let Some(u) = unique {
                                subs.push((d, u));
                            }
                        }
                    }
                }
                if subs.is_empty() {
                    break;
                }
                changed = true;
                crate::util::apply_substitutions(f, subs);
            }
            changed
        })
    }
}

/// Strength reduction: multiplications by powers of two become shifts.
/// Wins cycles (mul costs 3, shl costs 1) at equal size — the kind of
/// rewrite that separates the runtime target from the size target.
#[derive(Debug, Default)]
pub struct StrengthReduce;

impl Pass for StrengthReduce {
    fn name(&self) -> String {
        "strength-reduce".into()
    }

    fn description(&self) -> String {
        "rewrite multiplications by powers of two into shifts".into()
    }

    fn preserved(&self) -> crate::pass::Preserved {
        crate::pass::Preserved::Cfg
    }

    fn run_with(&self, m: &mut Module, _am: &mut cg_ir::AnalysisManager) -> PassEffect {
        for_each_function(m, |f| {
            let mut changed = false;
            for bid in f.block_ids_vec() {
                for inst in &mut f.block_mut(bid).insts {
                    if let Op::Bin(BinOp::Mul, x, y) = &inst.op {
                        let (val, konst) = if let Some(c) = y.as_const_int() {
                            (*x, c)
                        } else if let Some(c) = x.as_const_int() {
                            (*y, c)
                        } else {
                            continue;
                        };
                        if konst > 1 && (konst as u64).is_power_of_two() {
                            let k = (konst as u64).trailing_zeros() as i64;
                            inst.op = Op::Bin(BinOp::Shl, val, Operand::const_int(k));
                            changed = true;
                        }
                    }
                }
            }
            changed
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cg_ir::builder::ModuleBuilder;
    use cg_ir::verify::verify_module;

    fn build_with(f: impl FnOnce(&mut cg_ir::builder::FunctionBuilder<'_>)) -> Module {
        let mut mb = ModuleBuilder::new("t");
        let mut fb = mb.begin_function("f", &[Type::I64, Type::I64], Type::I64);
        f(&mut fb);
        fb.finish();
        mb.finish()
    }

    #[test]
    fn dce_removes_unused_chain() {
        let mut m = build_with(|fb| {
            let p = fb.param(0);
            let a = fb.bin(BinOp::Add, p, Operand::const_int(1)); // dead chain
            let _b = fb.bin(BinOp::Mul, a, Operand::const_int(2)); // dead
            fb.ret(Some(p));
        });
        assert!(Dce.run(&mut m));
        verify_module(&m).unwrap();
        assert_eq!(m.inst_count(), 1); // just the ret
        assert!(!Dce.run(&mut m), "second run is a no-op");
    }

    #[test]
    fn die_is_single_sweep() {
        let mut m = build_with(|fb| {
            let p = fb.param(0);
            let a = fb.bin(BinOp::Add, p, Operand::const_int(1));
            let _b = fb.bin(BinOp::Mul, a, Operand::const_int(2));
            fb.ret(Some(p));
        });
        assert!(Die.run(&mut m));
        // One sweep removes only the end of the chain (b), leaving a.
        assert_eq!(m.inst_count(), 2);
        assert!(Die.run(&mut m));
        assert_eq!(m.inst_count(), 1);
    }

    #[test]
    fn constfold_folds_chains() {
        let mut m = build_with(|fb| {
            let a = fb.bin(BinOp::Add, Operand::const_int(2), Operand::const_int(3));
            let b = fb.bin(BinOp::Mul, a, Operand::const_int(4));
            fb.ret(Some(b));
        });
        assert!(ConstFold.run(&mut m));
        verify_module(&m).unwrap();
        assert_eq!(m.inst_count(), 1);
        let f = m.func(m.find_func("f").unwrap());
        match &f.block(f.entry()).term {
            cg_ir::Terminator::Ret { value: Some(v) } => {
                assert_eq!(v.as_const_int(), Some(20));
            }
            t => panic!("unexpected {t:?}"),
        }
    }

    #[test]
    fn constfold_leaves_trapping_div() {
        let mut m = build_with(|fb| {
            let d = fb.bin(BinOp::Div, Operand::const_int(1), Operand::const_int(0));
            fb.ret(Some(d));
        });
        assert!(!ConstFold.run(&mut m));
        assert_eq!(m.inst_count(), 2);
    }

    #[test]
    fn instcombine_identities() {
        let mut m = build_with(|fb| {
            let p = fb.param(0);
            let a = fb.bin(BinOp::Add, p, Operand::const_int(0)); // → p
            let b = fb.bin(BinOp::Mul, a, Operand::const_int(1)); // → p
            let c = fb.bin(BinOp::Xor, b, b); // → 0
            let d = fb.bin(BinOp::Or, c, p); // → 0|p → p
            fb.ret(Some(d));
        });
        assert!(InstCombine::full().run(&mut m));
        verify_module(&m).unwrap();
        assert_eq!(m.inst_count(), 1);
    }

    #[test]
    fn instcombine_rewrites_sub_zero_to_neg() {
        let mut m = build_with(|fb| {
            let p = fb.param(0);
            let a = fb.bin(BinOp::Sub, Operand::const_int(0), p);
            fb.ret(Some(a));
        });
        assert!(InstCombine::full().run(&mut m));
        let f = m.func(m.find_func("f").unwrap());
        assert!(matches!(f.block(f.entry()).insts[0].op, Op::Neg(_)));
        // simplify_only must NOT do this rewrite.
        let mut m2 = build_with(|fb| {
            let p = fb.param(0);
            let a = fb.bin(BinOp::Sub, Operand::const_int(0), p);
            fb.ret(Some(a));
        });
        assert!(!InstCombine::simplify_only().run(&mut m2));
    }

    #[test]
    fn reassociate_folds_constant_chain() {
        let mut m = build_with(|fb| {
            let p = fb.param(0);
            let a = fb.bin(BinOp::Add, p, Operand::const_int(3));
            let b = fb.bin(BinOp::Add, a, Operand::const_int(4));
            fb.ret(Some(b));
        });
        assert!(Reassociate.run(&mut m));
        verify_module(&m).unwrap();
        // b is now p + 7; a becomes dead (removed by dce, not here).
        let f = m.func(m.find_func("f").unwrap());
        let last = f.block(f.entry()).insts.last().unwrap();
        assert_eq!(
            last.op,
            Op::Bin(BinOp::Add, fb_param0(), Operand::const_int(7))
        );
    }

    fn fb_param0() -> Operand {
        Operand::Value(ValueId(0))
    }

    #[test]
    fn early_cse_removes_duplicates_across_blocks() {
        let mut mb = ModuleBuilder::new("t");
        let mut fb = mb.begin_function("f", &[Type::I64], Type::I64);
        let p = fb.param(0);
        let a = fb.bin(BinOp::Mul, p, p);
        let next = fb.new_block();
        fb.br(next);
        fb.switch_to(next);
        let b = fb.bin(BinOp::Mul, p, p); // same expression, dominated
        let c = fb.bin(BinOp::Add, a, b);
        fb.ret(Some(c));
        fb.finish();
        let mut m = mb.finish();
        assert!(EarlyCse.run(&mut m));
        verify_module(&m).unwrap();
        assert_eq!(m.inst_count(), 4); // mul, add, br, ret
    }

    #[test]
    fn early_cse_commutative_canonicalization() {
        let mut m = build_with(|fb| {
            let p = fb.param(0);
            let q = fb.param(1);
            let a = fb.bin(BinOp::Add, p, q);
            let b = fb.bin(BinOp::Add, q, p); // same value, swapped
            let c = fb.bin(BinOp::Xor, a, b);
            fb.ret(Some(c));
        });
        assert!(EarlyCse.run(&mut m));
        verify_module(&m).unwrap();
        assert_eq!(m.inst_count(), 3);
    }

    #[test]
    fn phi_simplify_removes_trivial_phi() {
        let mut mb = ModuleBuilder::new("t");
        let mut fb = mb.begin_function("f", &[Type::I64], Type::I64);
        let p = fb.param(0);
        let l = fb.new_block();
        let r = fb.new_block();
        let join = fb.new_block();
        let c = fb.icmp(Pred::Lt, p, Operand::const_int(0));
        fb.cond_br(c, l, r);
        fb.switch_to(l);
        fb.br(join);
        fb.switch_to(r);
        fb.br(join);
        fb.switch_to(join);
        let phi = fb.phi(Type::I64, vec![(l, p), (r, p)]); // trivial
        fb.ret(Some(phi));
        fb.finish();
        let mut m = mb.finish();
        assert!(PhiSimplify.run(&mut m));
        verify_module(&m).unwrap();
        assert_eq!(m.inst_count(), 5); // icmp + condbr + 2 br + ret
    }

    #[test]
    fn strength_reduce_mul_to_shift() {
        let mut m = build_with(|fb| {
            let p = fb.param(0);
            let a = fb.bin(BinOp::Mul, p, Operand::const_int(8));
            fb.ret(Some(a));
        });
        assert!(StrengthReduce.run(&mut m));
        let f = m.func(m.find_func("f").unwrap());
        assert_eq!(
            f.block(f.entry()).insts[0].op,
            Op::Bin(
                BinOp::Shl,
                Operand::Value(ValueId(0)),
                Operand::const_int(3)
            )
        );
        // Not a power of two: untouched.
        let mut m2 = build_with(|fb| {
            let p = fb.param(0);
            let a = fb.bin(BinOp::Mul, p, Operand::const_int(6));
            fb.ret(Some(a));
        });
        assert!(!StrengthReduce.run(&mut m2));
    }

    #[test]
    fn adce_removes_dead_phi_cycle() {
        // A loop whose accumulator is never used after the loop: Dce can't
        // remove it (the phi uses keep counts nonzero), Adce can.
        let mut mb = ModuleBuilder::new("t");
        let mut fb = mb.begin_function("f", &[Type::I64], Type::I64);
        let n = fb.param(0);
        let entry = fb.current_block();
        let header = fb.new_block();
        let body = fb.new_block();
        let exit = fb.new_block();
        fb.br(header);
        fb.switch_to(header);
        let i = fb.phi(Type::I64, vec![(entry, Operand::const_int(0))]);
        let dead_acc = fb.phi(Type::I64, vec![(entry, Operand::const_int(0))]);
        let c = fb.icmp(Pred::Lt, i, n);
        fb.cond_br(c, body, exit);
        fb.switch_to(body);
        let dead_next = fb.bin(BinOp::Add, dead_acc, i);
        let i2 = fb.bin(BinOp::Add, i, Operand::const_int(1));
        fb.add_phi_incoming(i, body, i2);
        fb.add_phi_incoming(dead_acc, body, dead_next);
        fb.br(header);
        fb.switch_to(exit);
        fb.ret(Some(i));
        fb.finish();
        let mut m = mb.finish();
        let before = m.inst_count();
        assert!(!Dce.run(&mut m), "Dce cannot remove the phi cycle");
        assert!(Adce.run(&mut m));
        verify_module(&m).unwrap();
        assert!(m.inst_count() < before);
    }
}
