//! # cg-llvm: the simulated LLVM optimizer
//!
//! Reproduces the substrate behind CompilerGym's LLVM phase-ordering
//! environment: a library of real optimization passes over [`cg_ir`]
//! modules, the `-O0`/`-O1`/`-O2`/`-O3`/`-Oz` pipelines used as reward
//! baselines, a 124-entry discrete action space, and the five observation
//! spaces of Table III (LLVM-IR text, InstCount, Autophase, inst2vec,
//! ProGraML).
//!
//! Passes are genuine program transformations — dead-code elimination
//! enables nothing until `mem2reg` has created dead loads, inlining feeds
//! `sccp`, `licm` needs `loop-simplify` preheaders — so phase ordering is a
//! real combinatorial optimization problem, as in the paper.
//!
//! # Example
//!
//! ```
//! let mut module = cg_datasets::benchmark("benchmark://cbench-v1/crc32")?;
//! let before = module.inst_count();
//! cg_llvm::pipeline::run_oz(&mut module);
//! assert!(module.inst_count() <= before);
//! # Ok::<(), cg_datasets::DatasetError>(())
//! ```

pub mod action_space;
pub mod observation;
pub mod pass;
pub mod pipeline;
pub mod reward;
pub mod util;

pub mod passes {
    //! The optimization pass library, grouped by theme.
    pub mod cfg;
    pub mod gvn;
    pub mod ipo;
    pub mod loops;
    pub mod memory;
    pub mod scalar;
    pub mod sccp;
}
