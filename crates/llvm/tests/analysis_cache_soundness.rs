//! Analysis-cache soundness: after every pass application against a shared
//! [`cg_ir::AnalysisManager`], each analysis still cached for a function
//! must be structurally equal to a from-scratch recompute on the current
//! IR. This is the property that makes the whole invalidation design safe
//! to trust: a pass that over-claims `preserved()` (keeping a dominator
//! tree across a CFG edit), or a runner that revalidates a function a pass
//! actually changed, produces a divergent cached analysis — and this test
//! fails with the function and analysis named.

use proptest::prelude::*;

use cg_ir::AnalysisManager;
use cg_llvm::action_space::ActionSpace;

fn generate(seed: u64) -> cg_ir::Module {
    // Rotate through the fuzz profiles so the cache sees loop nests, φ
    // webs, aliasing memory and call graphs, not just one program shape.
    let name = cg_datasets::synth::FUZZ_PROFILES[(seed % 5) as usize];
    let profile = cg_datasets::synth::Profile::named(name).unwrap();
    cg_datasets::synth::generate(&profile, seed, "am-soundness")
}

fn check_sequence(seed: u64, actions: &[usize]) {
    let space = ActionSpace::new();
    let mut m = generate(seed);
    let mut am = AnalysisManager::new();
    for (step, &a) in actions.iter().enumerate() {
        space.apply_with(&mut m, a, &mut am);
        let bad = am.audit(&m);
        assert!(
            bad.is_empty(),
            "cache unsound after step {} (`{}`), seed {}: {}",
            step,
            space.pass(a).name(),
            seed,
            bad.join("; ")
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    /// Random module, random 1–16 pass sequence: the cache must stay
    /// consistent with fresh recomputes after every single step.
    #[test]
    fn cached_analyses_equal_fresh_recomputes(
        seed in 0u64..50_000,
        actions in proptest::collection::vec(0usize..124, 1..16),
    ) {
        check_sequence(seed, &actions);
    }
}

/// One deterministic long walk through analysis-heavy passes (the ones
/// declaring `Preserved::Cfg` plus CFG restructurers), so the preserve /
/// revalidate / invalidate paths are all exercised even if the sampled
/// cases above land elsewhere.
#[test]
fn deterministic_analysis_heavy_walk() {
    let space = ActionSpace::new();
    let names = [
        "mem2reg",
        "gvn",
        "early-cse",
        "sink",
        "simplifycfg",
        "licm",
        "loop-unroll-4",
        "sccp",
        "instcombine",
        "dce",
        "jump-threading",
        "gvn",
        "adce",
        "simplifycfg-aggressive",
        "inline-100",
        "globaldce",
        "dce",
    ];
    let actions: Vec<usize> = names
        .iter()
        .map(|n| space.index_of(n).expect("registry name"))
        .collect();
    for seed in [1u64, 7, 42] {
        check_sequence(seed, &actions);
    }
}

/// The no-op pass memo must be invisible in the produced IR: a repeated
/// sequence applied through a live manager (which skips memoized no-ops
/// wholesale) prints byte-identically to the always-recompute run, and the
/// skips actually fire.
#[test]
fn noop_memo_skips_preserve_printed_ir() {
    let space = ActionSpace::new();
    let seq: Vec<usize> = ["mem2reg", "gvn", "sccp", "dce", "simplifycfg", "adce"]
        .iter()
        .cycle()
        .take(24)
        .map(|n| space.index_of(n).unwrap())
        .collect();
    let m0 = generate(3);

    let mut cached = m0.clone();
    let mut am = AnalysisManager::new();
    cg_ir::am::reset_cache_stats();
    for &a in &seq {
        space.apply_with(&mut cached, a, &mut am);
    }
    let skips = cg_ir::am::cache_stats().noop_skips;
    assert!(
        skips > 0,
        "repeating a converged sequence never hit the memo"
    );

    let mut plain = m0.clone();
    let mut off = AnalysisManager::disabled();
    for &a in &seq {
        space.apply_with(&mut plain, a, &mut off);
    }
    assert_eq!(
        cg_llvm::observation::ir_text(&cached),
        cg_llvm::observation::ir_text(&plain),
        "memoized skips changed the produced IR"
    );
}
