//! Property tests over the whole 124-entry action space: every pass must
//! keep the verifier happy and be a deterministic function of its input
//! module. Determinism is the paper's `gvn-sink` story (§III-B3) turned
//! into a standing invariant — a pass whose output depends on allocation
//! addresses or hash-map iteration order breaks state replay, and this test
//! is where that surfaces first.

use proptest::prelude::*;

use cg_ir::verify::verify_module;
use cg_llvm::action_space::ActionSpace;

fn generate(seed: u64) -> cg_ir::Module {
    // Rotate through the fuzz profiles so each pass sees loop nests, φ webs,
    // aliasing memory and call graphs, not just one program shape.
    let name = cg_datasets::synth::FUZZ_PROFILES[(seed % 5) as usize];
    let profile = cg_datasets::synth::Profile::named(name).unwrap();
    cg_datasets::synth::generate(&profile, seed, "pass-props")
}

/// Every action, applied to one fixed module each: validity + determinism.
/// Exhaustive over the space where the proptest below samples (seed, action)
/// pairs — both matter: this one guarantees no action is ever skipped.
#[test]
fn all_actions_preserve_validity_and_determinism() {
    let space = ActionSpace::new();
    assert_eq!(space.len(), 124, "action space drifted; update this test");
    let base = generate(1);
    for i in 0..space.len() {
        let mut a = base.clone();
        let mut b = base.clone();
        space.apply(&mut a, i);
        verify_module(&a).unwrap_or_else(|e| {
            panic!(
                "action {} (`{}`) broke the verifier: {e}",
                i,
                space.pass(i).name()
            )
        });
        space.apply(&mut b, i);
        assert_eq!(
            cg_ir::printer::print_module(&a),
            cg_ir::printer::print_module(&b),
            "action {} (`{}`) is nondeterministic",
            i,
            space.pass(i).name()
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// Random (module, action): apply twice from clones, demand identical
    /// printed IR and a verifier-clean result.
    #[test]
    fn sampled_actions_are_deterministic(seed in 0u64..100_000, action in 0usize..124) {
        let space = ActionSpace::new();
        let base = generate(seed);
        let mut a = base.clone();
        let mut b = base;
        space.apply(&mut a, action);
        space.apply(&mut b, action);
        verify_module(&a).unwrap_or_else(|e| {
            panic!("action {} (`{}`) broke the verifier: {e}", action, space.pass(action).name())
        });
        prop_assert_eq!(
            cg_ir::printer::print_module(&a),
            cg_ir::printer::print_module(&b)
        );
    }

    /// Idempotence-of-state: running an action on its own output must still
    /// verify (passes need not be idempotent, but must stay sound when
    /// re-applied — pipelines repeat passes freely).
    #[test]
    fn actions_stay_sound_when_repeated(seed in 0u64..100_000, action in 0usize..124) {
        let space = ActionSpace::new();
        let mut m = generate(seed);
        space.apply(&mut m, action);
        space.apply(&mut m, action);
        verify_module(&m).unwrap_or_else(|e| {
            panic!("action {} (`{}`) unsound on repeat: {e}", action, space.pass(action).name())
        });
    }
}
