//! Differential equivalence gate for the IR core.
//!
//! Applies every one of the 124 actions to two fixed benchmarks and pins the
//! FNV-1a hash of the resulting printed IR. The hashes were captured on the
//! pre-arena `Vec<Option<Block>>` representation; the arena refactor must
//! reproduce every one byte-for-byte, which pins down id assignment, layout
//! order, and every pass's exact behaviour on the new storage.
//!
//! Regenerate (only for an *intentional* semantic change, in the same
//! commit) with:
//!
//! ```text
//! CG_BLESS=1 cargo test -p cg-llvm --test ir_equivalence
//! ```

use cg_llvm::action_space::ActionSpace;

const GOLDEN: &str = include_str!("goldens/ir_equivalence.txt");
const BENCHMARKS: [&str; 2] = ["benchmark://cbench-v1/crc32", "benchmark://csmith-v0/12345"];

/// One line per (benchmark, action): `uri<TAB>action<TAB>hash`, plus a
/// `<uri><TAB><baseline><TAB>hash` line for the unoptimized module.
fn current_table() -> String {
    let space = ActionSpace::new();
    let mut out = String::new();
    for uri in BENCHMARKS {
        let base = cg_datasets::benchmark(uri).unwrap();
        out.push_str(&format!(
            "{uri}\t<baseline>\t{:016x}\n",
            cg_ir::module_hash(&base)
        ));
        for i in 0..space.len() {
            let mut m = base.clone();
            space.apply(&mut m, i);
            cg_ir::verify::verify_module(&m).unwrap_or_else(|e| {
                panic!("{uri}: {} broke the module: {e}", space.pass(i).name())
            });
            out.push_str(&format!(
                "{uri}\t{}\t{:016x}\n",
                space.pass(i).name(),
                cg_ir::module_hash(&m)
            ));
        }
    }
    out
}

#[test]
fn printed_ir_is_byte_identical_for_all_actions() {
    let table = current_table();
    if std::env::var_os("CG_BLESS").is_some() {
        let path = concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/tests/goldens/ir_equivalence.txt"
        );
        std::fs::write(path, &table).unwrap();
        eprintln!("blessed {path}");
        return;
    }
    // Compare line-by-line so a drift names the exact (benchmark, action).
    let want: Vec<&str> = GOLDEN.lines().collect();
    let got: Vec<&str> = table.lines().collect();
    assert_eq!(
        want.len(),
        got.len(),
        "golden table has {} entries, current build produced {}",
        want.len(),
        got.len()
    );
    let mut drifted = Vec::new();
    for (w, g) in want.iter().zip(&got) {
        if w != g {
            drifted.push(format!("expected `{w}`, got `{g}`"));
        }
    }
    assert!(
        drifted.is_empty(),
        "printed IR drifted for {} action(s):\n{}",
        drifted.len(),
        drifted.join("\n")
    );
}
