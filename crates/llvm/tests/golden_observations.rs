//! Golden snapshots for the five observation spaces on two fixed-seed
//! benchmarks. Observation vectors are the contract between environments
//! and learned policies: a silent change to feature extraction invalidates
//! every trained model and every cached dataset. Any intentional change to
//! an extractor must update these constants in the same commit, which makes
//! feature drift a reviewed decision rather than an accident.
//!
//! Full vectors are pinned for the small spaces (InstCount-70, Autophase-56)
//! and FNV-1a content hashes for the large ones (IR text, inst2vec-200
//! little-endian bytes) plus node/edge counts for ProGraML.

use cg_llvm::observation::{
    autophase, inst2vec, inst_count, ir_text, programl, AUTOPHASE_DIM, INST2VEC_DIM, INST_COUNT_DIM,
};

struct Golden {
    uri: &'static str,
    ir_hash: u64,
    ir_lines: usize,
    inst_count: [i64; INST_COUNT_DIM],
    autophase: [i64; AUTOPHASE_DIM],
    inst2vec_hash: u64,
    programl_nodes: usize,
    programl_edges: usize,
}

const CRC32: Golden = Golden {
    uri: "benchmark://cbench-v1/crc32",
    ir_hash: 0x283dec03bf347912,
    ir_lines: 81,
    inst_count: [
        1, 0, 0, 0, 0, 1, 0, 4, 1, 0, 1, 0, 0, 0, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 14, 22,
        16, 2, 1, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 2, 1, 0, 2, 0, 69, 5, 2, 2, 2, 30, 0, 16, 9, 65, 2,
        0, 0, 0, 29, 4, 0, 4352, 1, 56, 1, 0,
    ],
    autophase: [
        5, 64, 2, 4, 0, 2, 1, 0, 2, 1, 0, 1, 0, 0, 1, 0, 1, 4, 2, 1, 0, 2, 0, 0, 0, 5, 0, 0, 0, 8,
        5, 1, 0, 0, 0, 1, 0, 4, 1, 1, 0, 1, 0, 0, 22, 16, 2, 14, 1, 0, 0, 0, 9, 2, 2, 38,
    ],
    inst2vec_hash: 0x08abf846e3b7046f,
    programl_nodes: 125,
    programl_edges: 196,
};

const CSMITH_12345: Golden = Golden {
    uri: "benchmark://csmith-v0/12345",
    ir_hash: 0xf422c708402eea51,
    ir_lines: 1216,
    inst_count: [
        27, 7, 2, 1, 3, 17, 8, 19, 5, 3, 3, 0, 3, 0, 0, 3, 7, 13, 6, 2, 1, 0, 0, 0, 0, 0, 0, 4,
        211, 378, 260, 10, 15, 0, 1, 1, 2, 0, 0, 0, 2, 3, 0, 60, 26, 2, 5, 0, 1110, 93, 5, 2, 64,
        467, 5, 221, 120, 1112, 10, 0, 43, 10, 80, 120, 6, 80, 0, 322, 28, 2,
    ],
    autophase: [
        93, 1017, 5, 120, 0, 60, 26, 2, 60, 26, 2, 50, 7, 7, 17, 4, 9, 80, 60, 26, 2, 5, 0, 0, 0,
        93, 0, 0, 0, 98, 60, 27, 7, 2, 4, 17, 8, 19, 5, 6, 3, 32, 0, 4, 378, 260, 10, 211, 15, 17,
        4, 5, 114, 11, 16, 638,
    ],
    inst2vec_hash: 0x67bc3e96ef854f57,
    programl_nodes: 1917,
    programl_edges: 3179,
};

fn check(golden: &Golden) {
    let m = cg_datasets::benchmark(golden.uri).unwrap();

    let ir = ir_text(&m);
    assert_eq!(
        cg_ir::fnv1a(ir.as_bytes()),
        golden.ir_hash,
        "{}: IR text drifted ({} lines, expected {})",
        golden.uri,
        ir.lines().count(),
        golden.ir_lines
    );
    assert_eq!(
        ir.lines().count(),
        golden.ir_lines,
        "{}: IR line count drifted",
        golden.uri
    );

    let ic = inst_count(&m);
    assert_eq!(ic.len(), INST_COUNT_DIM);
    assert_eq!(ic, golden.inst_count, "{}: InstCount drifted", golden.uri);

    let ap = autophase(&m);
    assert_eq!(ap.len(), AUTOPHASE_DIM);
    assert_eq!(ap, golden.autophase, "{}: Autophase drifted", golden.uri);

    let iv = inst2vec(&m);
    assert_eq!(iv.len(), INST2VEC_DIM);
    let iv_bytes: Vec<u8> = iv.iter().flat_map(|f| f.to_le_bytes()).collect();
    assert_eq!(
        cg_ir::fnv1a(&iv_bytes),
        golden.inst2vec_hash,
        "{}: inst2vec embedding drifted (first dims: {:?})",
        golden.uri,
        &iv[..4]
    );

    let g = programl(&m);
    assert_eq!(
        g.node_count(),
        golden.programl_nodes,
        "{}: ProGraML node count drifted",
        golden.uri
    );
    assert_eq!(
        g.edge_count(),
        golden.programl_edges,
        "{}: ProGraML edge count drifted",
        golden.uri
    );
}

#[test]
fn golden_observations_cbench_crc32() {
    check(&CRC32);
}

#[test]
fn golden_observations_csmith_12345() {
    check(&CSMITH_12345);
}
