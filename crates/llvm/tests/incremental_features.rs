//! The incremental-observation contract: a feature cache driven by the
//! `Touched` sets passes report must agree exactly with a from-scratch
//! module scan, for any pipeline. This is the soundness condition that lets
//! `InstCount`/`Autophase` skip clean functions after each action.

use proptest::prelude::*;

use cg_llvm::action_space::ActionSpace;
use cg_llvm::observation::{autophase, inst_count, IncrementalFeatures};

fn generate(seed: u64) -> cg_ir::Module {
    let name = cg_datasets::synth::FUZZ_PROFILES[(seed % 5) as usize];
    let profile = cg_datasets::synth::Profile::named(name).unwrap();
    cg_datasets::synth::generate(&profile, seed, "incr-feat")
}

/// Drives a pipeline through `apply_tracked`, checking the incremental
/// vectors against the monolithic oracle after every single action.
fn check_pipeline(mut m: cg_ir::Module, actions: &[usize]) {
    let space = ActionSpace::new();
    let mut feat = IncrementalFeatures::new();
    assert_eq!(feat.inst_count(&m), inst_count(&m));
    assert_eq!(feat.autophase(&m), autophase(&m));
    for (step, &a) in actions.iter().enumerate() {
        let effect = space.apply_tracked(&mut m, a);
        feat.invalidate(&effect.touched);
        assert_eq!(
            feat.inst_count(&m),
            inst_count(&m),
            "InstCount diverged at step {step} (action `{}`, effect {:?})",
            space.pass(a).name(),
            effect
        );
        assert_eq!(
            feat.autophase(&m),
            autophase(&m),
            "Autophase diverged at step {step} (action `{}`, effect {:?})",
            space.pass(a).name(),
            effect
        );
    }
}

/// A fixed deep pipeline over a real benchmark, covering function-local,
/// CFG and interprocedural passes (the latter report conservative `All`).
#[test]
fn incremental_matches_full_on_cbench() {
    let space = ActionSpace::new();
    let names = [
        "mem2reg",
        "instcombine",
        "gvn",
        "simplifycfg",
        "inline-225",
        "sccp",
        "dce",
        "licm",
        "loop-unroll-4",
        "globaldce",
        "adce",
        "merge-blocks",
    ];
    let actions: Vec<usize> = names
        .iter()
        .map(|n| space.index_of(n).expect("known action"))
        .collect();
    for bench in ["cbench-v1/crc32", "cbench-v1/qsort"] {
        check_pipeline(cg_datasets::benchmark(bench).unwrap(), &actions);
    }
}

/// The cache survives `clear` mid-episode (what a session does on
/// `load_state`) without drifting.
#[test]
fn clear_resets_to_cold_state() {
    let space = ActionSpace::new();
    let mut m = cg_datasets::benchmark("cbench-v1/crc32").unwrap();
    let mut feat = IncrementalFeatures::new();
    feat.inst_count(&m);
    space.apply(&mut m, space.index_of("mem2reg").unwrap());
    // Deliberately skip invalidation, then clear: the stale entries must go.
    feat.clear();
    assert_eq!(feat.cached_functions(), 0);
    assert_eq!(feat.inst_count(&m), inst_count(&m));
    assert_eq!(feat.autophase(&m), autophase(&m));
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    /// Random module, random pipeline: incremental == full after every step.
    #[test]
    fn incremental_matches_full_on_random_pipelines(
        seed in 0u64..100_000,
        actions in proptest::collection::vec(0usize..124, 1..12),
    ) {
        check_pipeline(generate(seed), &actions);
    }
}
