//! # cg-baselines: prior-work environment architectures
//!
//! Faithful re-implementations of the *architectures* CompilerGym is
//! compared against in Table II, holding the compiler constant:
//!
//! * [`AutophaseStyleEnv`] — the Autophase harness: at every step it
//!   re-reads the IR text, re-parses it, re-applies the **entire** action
//!   sequence from scratch, and re-serializes — O(nm) per step versus
//!   CompilerGym's incremental O(n).
//! * [`OpenTunerStyleEnv`] — the OpenTuner harness: each measurement is a
//!   full compile round trip through the filesystem plus a results-database
//!   insert; environment "initialization" creates the database — the source
//!   of its large init cost in Table II.
//!
//! Both produce bit-identical results to the CompilerGym environment (same
//! passes, same rewards); only the computational shape differs.

use std::io::Write as _;

use cg_ir::Module;
use cg_llvm::action_space::ActionSpace;
use cg_llvm::reward;

/// The Autophase-style environment: stateless between steps except for the
/// action list; every step re-parses and re-runs the whole prefix.
pub struct AutophaseStyleEnv {
    space: ActionSpace,
    /// Serialized unoptimized IR (what Autophase keeps on disk).
    ir_text: String,
    actions: Vec<usize>,
    prev_count: f64,
    /// Cumulative passes executed (the O(nm) work term, observable in
    /// tests and benchmarks).
    pub total_passes_executed: u64,
}

impl AutophaseStyleEnv {
    /// Creates an environment for a benchmark URI. This is the O(n) init of
    /// Table II: the module is built and serialized to text.
    ///
    /// # Errors
    /// Propagates dataset failures.
    pub fn new(benchmark: &str) -> Result<AutophaseStyleEnv, cg_datasets::DatasetError> {
        let m = cg_datasets::benchmark(benchmark)?;
        let ir_text = cg_ir::printer::print_module(&m);
        let prev_count = m.inst_count() as f64;
        Ok(AutophaseStyleEnv {
            space: ActionSpace::new(),
            ir_text,
            actions: Vec::new(),
            prev_count,
            total_passes_executed: 0,
        })
    }

    /// The action space (identical to CompilerGym's).
    pub fn action_space(&self) -> &ActionSpace {
        &self.space
    }

    fn recompile(&mut self) -> Module {
        // Read + parse the IR, apply the full pass sequence, serialize: the
        // O(nm) step of Table II.
        let mut m = cg_ir::parser::parse_module(&self.ir_text).expect("own IR reparses");
        for &a in &self.actions {
            self.space.apply(&mut m, a);
            self.total_passes_executed += 1;
        }
        let _serialized = cg_ir::printer::print_module(&m);
        m
    }

    /// One step: appends the action, recompiles from scratch, and returns
    /// `(autophase observation, instruction-count reward)`.
    pub fn step(&mut self, action: usize) -> (Vec<i64>, f64) {
        self.actions.push(action);
        let m = self.recompile();
        let count = reward::ir_instruction_count(&m) as f64;
        let r = self.prev_count - count;
        self.prev_count = count;
        (cg_llvm::observation::autophase(&m), r)
    }

    /// Restarts the episode.
    pub fn reset(&mut self) -> Vec<i64> {
        self.actions.clear();
        let m = self.recompile();
        self.prev_count = m.inst_count() as f64;
        cg_llvm::observation::autophase(&m)
    }
}

/// The OpenTuner-style environment: a black-box tuner driving whole
/// compilations through the filesystem with a results database.
pub struct OpenTunerStyleEnv {
    space: ActionSpace,
    workdir: std::path::PathBuf,
    source_path: std::path::PathBuf,
    db_path: std::path::PathBuf,
    actions: Vec<usize>,
    prev_count: f64,
    trial: u64,
}

impl OpenTunerStyleEnv {
    /// Creates the tuning directory and results database (the large O(n)
    /// init of Table II: "several disk operations and the creation of a
    /// database").
    ///
    /// # Errors
    /// Dataset or I/O failures.
    pub fn new(benchmark: &str) -> Result<OpenTunerStyleEnv, String> {
        let m = cg_datasets::benchmark(benchmark).map_err(|e| e.to_string())?;
        let dir = std::env::temp_dir().join(format!(
            "cg-opentuner-{}-{:x}",
            std::process::id(),
            cg_ir::fnv1a(benchmark.as_bytes())
        ));
        std::fs::create_dir_all(&dir).map_err(|e| e.to_string())?;
        let source_path = dir.join("input.ir");
        std::fs::write(&source_path, cg_ir::printer::print_module(&m))
            .map_err(|e| e.to_string())?;
        let db_path = dir.join("results.db");
        // "Create a database": seed it with a schema header and sync.
        let mut db = std::fs::File::create(&db_path).map_err(|e| e.to_string())?;
        db.write_all(b"trial,config,objective\n")
            .map_err(|e| e.to_string())?;
        db.sync_all().map_err(|e| e.to_string())?;
        let prev_count = m.inst_count() as f64;
        Ok(OpenTunerStyleEnv {
            space: ActionSpace::new(),
            workdir: dir,
            source_path,
            db_path,
            actions: Vec::new(),
            prev_count,
            trial: 0,
        })
    }

    /// The action space (identical to CompilerGym's).
    pub fn action_space(&self) -> &ActionSpace {
        &self.space
    }

    /// One measurement: read source from disk, apply the full sequence,
    /// write the artifact, append to the results DB.
    pub fn step(&mut self, action: usize) -> f64 {
        self.actions.push(action);
        self.trial += 1;
        let text = std::fs::read_to_string(&self.source_path).expect("source exists");
        let mut m = cg_ir::parser::parse_module(&text).expect("own IR reparses");
        for &a in &self.actions {
            self.space.apply(&mut m, a);
        }
        let out_path = self.workdir.join("output.ir");
        std::fs::write(&out_path, cg_ir::printer::print_module(&m)).expect("write artifact");
        let count = reward::ir_instruction_count(&m) as f64;
        let mut db = std::fs::OpenOptions::new()
            .append(true)
            .open(&self.db_path)
            .expect("db exists");
        let _ = writeln!(db, "{},{:?},{}", self.trial, self.actions, count);
        let r = self.prev_count - count;
        self.prev_count = count;
        r
    }

    /// Restarts the episode.
    pub fn reset(&mut self) {
        self.actions.clear();
        let text = std::fs::read_to_string(&self.source_path).expect("source exists");
        let m = cg_ir::parser::parse_module(&text).expect("own IR reparses");
        self.prev_count = m.inst_count() as f64;
    }
}

impl Drop for OpenTunerStyleEnv {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.workdir);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn autophase_style_matches_compilergym_results() {
        // Same passes, same rewards — only the architecture differs.
        let mut base = AutophaseStyleEnv::new("benchmark://cbench-v1/crc32").unwrap();
        let m2r = base.space.index_of("mem2reg").unwrap();
        let dce = base.space.index_of("dce").unwrap();
        let (_, r1) = base.step(m2r);
        let (_, r2) = base.step(dce);

        let mut env = cg_core::make("llvm-v0").unwrap();
        env.set_benchmark("benchmark://cbench-v1/crc32");
        env.reset().unwrap();
        let e1 = env.step(m2r).unwrap().reward;
        let e2 = env.step(dce).unwrap().reward;
        assert_eq!(r1, e1);
        assert_eq!(r2, e2);
    }

    #[test]
    fn opentuner_style_accumulates_db_rows() {
        let mut t = OpenTunerStyleEnv::new("benchmark://cbench-v1/sha").unwrap();
        let m2r = t.space.index_of("mem2reg").unwrap();
        let r = t.step(m2r);
        assert!(r > 0.0);
        let db = std::fs::read_to_string(&t.db_path).unwrap();
        assert_eq!(db.lines().count(), 2); // header + one trial
    }

    #[test]
    fn recompilation_work_grows_with_episode_length() {
        // The O(nm) signature, asserted on the work itself rather than wall
        // time (timing comparisons live in `table2` and the Criterion
        // benches): every step re-applies the whole action prefix, so the
        // pass-executions count is quadratic in episode length.
        let mut base = AutophaseStyleEnv::new("benchmark://cbench-v1/crc32").unwrap();
        let dce = base.space.index_of("dce").unwrap();
        for _ in 0..10 {
            base.step(dce);
        }
        // After 10 steps the harness has executed 1+2+…+10 = 55 passes,
        // versus 10 for the incremental architecture.
        assert_eq!(base.total_passes_executed, 55);
    }
}
